//! The wire front end: a length-prefixed request/response loop over any
//! `Read`/`Write` pair (the `serve_stdio` binary wires it to stdin/stdout; tests
//! drive it over in-memory buffers).
//!
//! ## Framing
//!
//! Each message is a 4-byte little-endian length followed by that many bytes
//! of payload.  Frames above [`MAX_FRAME_LEN`] are rejected (a corrupt length
//! prefix must not trigger a giant allocation).  A clean EOF between frames ends
//! the connection.
//!
//! A payload is UTF-8 JSON (below), a **compact binary request frame**
//! (`b"CPMF"` magic — see [`crate::proto`] for the format; its response is
//! binary too), or a **binary report frame**: if the payload starts with the
//! `b"CPMR"` magic it is decoded as a `cpm_collect::wire` batch (versioned
//! 12-byte header + 20-byte records, one `(SpecKey, output)` report each) and
//! ingested into the engine's collector.  JSON can never start with either
//! magic, so the three formats share one framing layer unambiguously.  The
//! response to a report frame is the usual JSON
//! `{"ok": true, "ingested": N, "rejected": 0}`.
//!
//! ## Requests
//!
//! ```json
//! {"op": "privatize", "n": 32, "alpha": 0.9, "properties": "WH+CM",
//!  "objective": "L0", "inputs": [3, 17, 0]}
//! ```
//!
//! `op` is one of `privatize` (default when empty), `warm`, `report`,
//! `estimate`, `stats`, `metrics`, `shutdown`.  `properties` lists the paper's
//! short names separated by `+`, `,`, or spaces.  The response mirrors the
//! request frame format:
//!
//! ```json
//! {"ok": true, "outputs": [2, 18, 1], "cache_hits": 1, ...}
//! ```
//!
//! ## The collect pipeline: `report` and `estimate`
//!
//! `report` is the JSON fallback for the binary report format — it carries
//! privatized outputs for **one** key and feeds the engine's
//! `cpm_collect::ReportCollector`:
//!
//! ```json
//! {"op": "report", "n": 32, "alpha": 0.9, "reports": [2, 18, 1, 32]}
//! ```
//!
//! → `{"ok": true, "ingested": 4, "rejected": 0}`.  Out-of-range outputs are
//! counted in `rejected`, never fatal.  Group sizes are bounded by the one
//! serving ceiling [`crate::proto::MAX_WIRE_N`] on every report path — JSON,
//! `CPMF`, and `CPMR` alike (a hostile `n` must not size an allocation, here
//! or later when the key is designed for estimation) — and the collector
//! holds at most `cpm_collect::DEFAULT_MAX_KEYS` distinct keys; reports past
//! either bound are rejected, not fatal.
//!
//! `estimate` inverts the key's designed mechanism matrix over everything the
//! collector has accumulated for it, returning the unbiased input-frequency
//! estimates and their plug-in variances (`estimates[k] ± z·sqrt(variances[k])`
//! is the client's confidence interval):
//!
//! ```json
//! {"op": "estimate", "n": 32, "alpha": 0.9}
//! ```
//!
//! → `{"ok": true, "reports": 4, "estimates": [...], "variances": [...]}`.
//! Estimating a key with no reports, or a singular design (the Uniform
//! mechanism carries nothing to invert), fails soft with `ok: false`.
//!
//! ## The `metrics` op
//!
//! `{"op": "metrics"}` scrapes the process-wide [`cpm_obs`] registry without
//! restarting or attaching to the server: the response's `metrics` field holds
//! the full Prometheus-style text exposition (every other numeric field is
//! zero).  An example scrape, abbreviated:
//!
//! ```json
//! {"ok": true, "metrics": "# TYPE cpm_cache_hits_total counter\ncpm_cache_hits_total 412\n# TYPE cpm_engine_batch_nanos histogram\ncpm_engine_batch_nanos_bucket{le=\"524287\"} 9\n..."}
//! ```
//!
//! See the `cpm-obs` crate docs for the metric catalogue (names, types,
//! labels, meanings).

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use cpm_core::PropertySet;

use crate::engine::Engine;

/// Upper bound on one frame's payload (16 MiB) — a corrupt or hostile length
/// prefix fails fast instead of allocating unbounded memory.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// One request frame, as decoded from JSON.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireRequest {
    /// `privatize` (default when empty), `warm`, `report`, `estimate`,
    /// `stats`, `metrics`, or `shutdown`.
    #[serde(default)]
    pub op: String,
    /// Group size of the requested mechanism.
    #[serde(default)]
    pub n: usize,
    /// Privacy parameter α ∈ (0, 1].
    #[serde(default)]
    pub alpha: f64,
    /// Requested structural properties: short names separated by `+`/`,`/space
    /// (e.g. `"WH+CM"`); empty for the unconstrained design.
    #[serde(default)]
    pub properties: String,
    /// Objective: `L0` (default), `L1`, `L2`, or `L0,d`.
    #[serde(default)]
    pub objective: String,
    /// True counts to privatise (one draw per entry; `privatize` only).
    #[serde(default)]
    pub inputs: Vec<usize>,
    /// Privatised outputs to accumulate (`report` only).
    #[serde(default)]
    pub reports: Vec<usize>,
}

/// One response frame, encoded to JSON.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireResponse {
    /// Whether the request succeeded; on failure only `error` is meaningful.
    pub ok: bool,
    /// Human-readable failure reason (empty on success).
    #[serde(default)]
    pub error: String,
    /// Privatised outputs, in input order (`privatize` only).
    #[serde(default)]
    pub outputs: Vec<usize>,
    /// Cumulative cache hits (`stats`) or this batch's key hits (`privatize`).
    #[serde(default)]
    pub cache_hits: u64,
    /// Cumulative or per-batch cold misses, as above.
    #[serde(default)]
    pub cache_misses: u64,
    /// Designs performed (cumulative for `stats`; this batch for `privatize`).
    #[serde(default)]
    pub design_solves: u64,
    /// Resident designs after the request.
    #[serde(default)]
    pub entries: u64,
    /// Microseconds spent designing (this batch, or cumulative for `stats`).
    #[serde(default)]
    pub design_micros: u64,
    /// Microseconds spent sampling (this batch; 0 for `stats`).
    #[serde(default)]
    pub sample_micros: u64,
    /// The Prometheus-style text exposition (`metrics` op only; empty
    /// otherwise).
    #[serde(default)]
    pub metrics: String,
    /// Reports accepted into the collector (`report` and binary frames).
    #[serde(default)]
    pub ingested: u64,
    /// Reports dropped as out of range, as above.
    #[serde(default)]
    pub rejected: u64,
    /// Total reports backing the estimates (`estimate` only).
    #[serde(default)]
    pub reports: u64,
    /// Unbiased input-frequency estimates `t̂ = M⁻¹·o` (`estimate` only).
    #[serde(default)]
    pub estimates: Vec<f64>,
    /// Plug-in variances, one per estimate (`estimate` only).
    #[serde(default)]
    pub variances: Vec<f64>,
}

/// Totals for one served connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionSummary {
    /// Frames processed (including failed ones).
    pub frames: u64,
    /// Privatised draws returned.
    pub draws: u64,
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Read one length-prefixed frame; `Ok(None)` on clean EOF before a length
/// prefix, an `UnexpectedEof` error on EOF mid-frame.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let got = reader.read(&mut len_bytes[filled..])?;
        if got == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside a frame length prefix",
            ));
        }
        filled += got;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let got = reader.read(&mut payload[filled..])?;
        if got == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside a frame payload",
            ));
        }
        filled += got;
    }
    Ok(Some(payload))
}

/// Parse a property list as it appears on the wire (and in `CPM_SERVE_WARM`
/// specs): the paper's short names split on `+`, `,`, or whitespace.
#[deprecated(
    since = "0.1.0",
    note = "property-string parsing lives in the core crate now: \
            use `text.parse::<cpm_core::PropertySet>()`"
)]
pub fn parse_properties(text: &str) -> Result<PropertySet, String> {
    text.parse().map_err(|e: cpm_core::CoreError| e.to_string())
}

fn failure(message: String) -> WireResponse {
    WireResponse {
        ok: false,
        error: message,
        ..WireResponse::default()
    }
}

/// Process one decoded request against the engine.  Returns the response and
/// whether the connection should close (`shutdown`).
///
/// This is the JSON entry into the shared op dispatcher in [`crate::proto`]:
/// the request is translated to a [`crate::proto::Op`] and dispatched exactly
/// as its binary-codec twin would be.
pub fn dispatch(engine: &Engine, request: &WireRequest) -> (WireResponse, bool) {
    // The request counter fires on entry so the `metrics` op's own scrape
    // already includes it; latency is recorded after the work (op translation
    // included — a malformed key costs wire time too).
    let op = crate::proto::normalized_op(request.op.as_str());
    if cpm_obs::enabled() {
        cpm_obs::registry()
            .counter(&format!("cpm_wire_requests_total{{op=\"{op}\"}}"))
            .inc();
    }
    let op_started = std::time::Instant::now();
    let outcome = match crate::proto::op_from_request(request) {
        Ok(op) => crate::proto::dispatch_inner(engine, &op),
        Err(message) => (failure(message), false),
    };
    if cpm_obs::enabled() {
        cpm_obs::registry()
            .histogram(&format!("cpm_wire_op_nanos{{op=\"{op}\"}}"))
            .record_duration(op_started.elapsed());
    }
    outcome
}

/// Serve frames until EOF or a `shutdown` op.  One bad frame (malformed JSON,
/// unknown op, invalid α) yields an `ok: false` response and the loop continues;
/// only I/O failures end the connection with an error.
///
/// This is the blocking adapter over the pull-based protocol state machine in
/// [`crate::proto`] — the poll reactor in [`crate::net`] drives the identical
/// machine nonblockingly, so both transports speak byte-identical protocol.
pub fn serve_connection<R: Read, W: Write>(
    engine: &Engine,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<ConnectionSummary> {
    let mut conn = crate::proto::ProtoConnection::new(crate::proto::ProtoConfig::from_env());
    let mut buf = [0u8; 16 * 1024];
    loop {
        let got = reader.read(&mut buf)?;
        if got == 0 {
            flush_pending(&mut conn, writer)?;
            conn.finish()?;
            break;
        }
        let outcome = conn.ingest(engine, &buf[..got]);
        // Responses produced before a protocol error are still delivered.
        flush_pending(&mut conn, writer)?;
        outcome?;
        if conn.wants_close() {
            break;
        }
    }
    Ok(conn.summary())
}

fn flush_pending<W: Write>(
    conn: &mut crate::proto::ProtoConnection,
    writer: &mut W,
) -> io::Result<()> {
    loop {
        let pending = conn.pending_output();
        if pending.is_empty() {
            return writer.flush();
        }
        writer.write_all(pending)?;
        let written = pending.len();
        conn.advance_output(written);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use cpm_core::{Alpha, SpecKey};
    use std::io::Cursor;

    fn frame(json: &str) -> Vec<u8> {
        let mut bytes = (json.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(json.as_bytes());
        bytes
    }

    fn run(engine: &Engine, frames: &[&str]) -> (Vec<WireResponse>, ConnectionSummary) {
        let mut input = Vec::new();
        for f in frames {
            input.extend_from_slice(&frame(f));
        }
        let mut reader = Cursor::new(input);
        let mut output = Vec::new();
        let summary = serve_connection(engine, &mut reader, &mut output).unwrap();
        let mut responses = Vec::new();
        let mut cursor = Cursor::new(output);
        while let Some(payload) = read_frame(&mut cursor).unwrap() {
            let text = String::from_utf8(payload).unwrap();
            responses.push(serde_json::from_str(&text).unwrap());
        }
        (responses, summary)
    }

    #[test]
    fn privatize_round_trip_over_the_wire() {
        let engine = Engine::with_defaults();
        let (responses, summary) = run(
            &engine,
            &[r#"{"op": "privatize", "n": 8, "alpha": 0.5, "inputs": [0, 4, 8]}"#],
        );
        assert_eq!(summary.frames, 1);
        assert_eq!(summary.draws, 3);
        let response = &responses[0];
        assert!(response.ok, "error: {}", response.error);
        assert_eq!(response.outputs.len(), 3);
        assert!(response.outputs.iter().all(|&o| o <= 8));
        assert_eq!(response.cache_misses, 1);
    }

    #[test]
    fn warm_then_privatize_hits_the_cache() {
        let engine = Engine::with_defaults();
        let (responses, _) = run(
            &engine,
            &[
                r#"{"op": "warm", "n": 6, "alpha": 0.9, "properties": "WH"}"#,
                r#"{"op": "privatize", "n": 6, "alpha": 0.9, "properties": "WH", "inputs": [1, 2]}"#,
                r#"{"op": "stats"}"#,
            ],
        );
        assert!(responses.iter().all(|r| r.ok));
        assert_eq!(responses[0].entries, 1);
        assert_eq!(responses[1].cache_hits, 1);
        assert_eq!(responses[1].cache_misses, 0);
        assert_eq!(responses[2].design_solves, 1);
    }

    #[test]
    fn bad_frames_fail_soft_and_shutdown_closes() {
        let engine = Engine::with_defaults();
        let (responses, summary) = run(
            &engine,
            &[
                r#"{"op": "privatize", "n": 4, "alpha": 2.0, "inputs": [1]}"#,
                r#"{"op": "nonsense"}"#,
                "not json at all",
                r#"{"op": "shutdown"}"#,
                r#"{"op": "stats"}"#,
            ],
        );
        // The post-shutdown frame is never processed.
        assert_eq!(summary.frames, 4);
        assert!(!responses[0].ok, "alpha = 2.0 must be rejected");
        assert!(!responses[1].ok);
        assert!(!responses[2].ok);
        assert!(responses[3].ok, "shutdown acks before closing");
    }

    #[test]
    fn oversized_and_truncated_frames_are_io_errors() {
        let engine = Engine::with_defaults();
        // A length prefix far beyond MAX_FRAME_LEN.
        let mut reader = Cursor::new(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        let mut output = Vec::new();
        assert!(serve_connection(&engine, &mut reader, &mut output).is_err());
        // EOF mid-payload.
        let mut truncated = 10u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(b"abc");
        let mut reader = Cursor::new(truncated);
        assert!(serve_connection(&engine, &mut reader, &mut output).is_err());
    }

    #[test]
    fn oversized_report_group_sizes_fail_soft_without_allocating() {
        let engine = Engine::with_defaults();
        // n = u32::MAX - 1 would size a ~34 GB accumulator if it reached the
        // collector; the report op must refuse it at validation instead.
        let (responses, _) = run(
            &engine,
            &[
                r#"{"op": "report", "n": 4294967294, "alpha": 0.9, "reports": [0]}"#,
                r#"{"op": "report", "n": 0, "alpha": 0.9, "reports": [0]}"#,
            ],
        );
        assert!(!responses[0].ok);
        assert!(responses[0].error.contains("group size"));
        assert!(!responses[1].ok);
        assert!(engine.collector().is_empty());
    }

    #[test]
    fn report_then_estimate_round_trip() {
        let engine = Engine::with_defaults();
        // 60 reports at output 0, 40 at output 4, for the (n=4, α=0.5) GM.
        let mut reports = String::from(r#"{"op": "report", "n": 4, "alpha": 0.5, "reports": ["#);
        let outputs: Vec<String> = (0..100)
            .map(|i| if i < 60 { "0" } else { "4" }.to_string())
            .collect();
        reports.push_str(&outputs.join(","));
        reports.push_str("]}");
        let (responses, _) = run(
            &engine,
            &[
                &reports,
                r#"{"op": "report", "n": 4, "alpha": 0.5, "reports": [9]}"#,
                r#"{"op": "estimate", "n": 4, "alpha": 0.5}"#,
                r#"{"op": "estimate", "n": 7, "alpha": 0.5}"#,
            ],
        );
        assert!(responses[0].ok, "error: {}", responses[0].error);
        assert_eq!(responses[0].ingested, 100);
        // Output 9 is out of range for n = 4: rejected, not fatal.
        assert!(responses[1].ok);
        assert_eq!(responses[1].ingested, 0);
        assert_eq!(responses[1].rejected, 1);
        let estimate = &responses[2];
        assert!(estimate.ok, "error: {}", estimate.error);
        assert_eq!(estimate.reports, 100);
        assert_eq!(estimate.estimates.len(), 5);
        assert_eq!(estimate.variances.len(), 5);
        assert!((estimate.estimates.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        // No reports for the (n=7, α=0.5) key.
        assert!(!responses[3].ok);
        assert!(responses[3].error.contains("no reports"));
    }

    #[test]
    fn binary_report_frames_share_the_connection() {
        use cpm_collect::wire::{encode_batch, Report};
        let engine = Engine::with_defaults();
        let key = SpecKey::new(8, Alpha::new(0.9).unwrap(), PropertySet::empty());
        let reports: Vec<Report> = (0..=8).map(|o| Report::new(key, o).unwrap()).collect();
        let batch = encode_batch(&reports).unwrap();

        let mut input = Vec::new();
        input.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        input.extend_from_slice(&batch);
        input.extend_from_slice(&frame(r#"{"op": "estimate", "n": 8, "alpha": 0.9}"#));
        // A corrupt binary frame (magic intact, body truncated) fails soft.
        let corrupt = &batch[..batch.len() - 3];
        input.extend_from_slice(&(corrupt.len() as u32).to_le_bytes());
        input.extend_from_slice(corrupt);

        let mut reader = Cursor::new(input);
        let mut output = Vec::new();
        let summary = serve_connection(&engine, &mut reader, &mut output).unwrap();
        assert_eq!(summary.frames, 3);

        let mut responses: Vec<WireResponse> = Vec::new();
        let mut cursor = Cursor::new(output);
        while let Some(payload) = read_frame(&mut cursor).unwrap() {
            responses.push(serde_json::from_str(&String::from_utf8(payload).unwrap()).unwrap());
        }
        assert!(responses[0].ok, "error: {}", responses[0].error);
        assert_eq!(responses[0].ingested, 9);
        assert!(responses[1].ok, "error: {}", responses[1].error);
        assert_eq!(responses[1].reports, 9);
        assert_eq!(responses[1].estimates.len(), 9);
        assert!(!responses[2].ok, "truncated binary frame must fail soft");
        assert!(responses[2].error.contains("report frame"));
    }

    #[test]
    fn property_parsing_accepts_the_paper_separators() {
        use cpm_core::Property;
        // The wire grammar is core's `FromStr for PropertySet`; the deprecated
        // shim must agree with it.
        assert_eq!(
            "WH+CM".parse::<PropertySet>().unwrap(),
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::ColumnMonotonicity)
        );
        assert_eq!(
            "rh, s".parse::<PropertySet>().unwrap(),
            PropertySet::empty()
                .with(Property::RowHonesty)
                .with(Property::Symmetry)
        );
        assert_eq!("".parse::<PropertySet>().unwrap(), PropertySet::empty());
        assert!("XX".parse::<PropertySet>().is_err());
        #[allow(deprecated)]
        {
            assert_eq!(
                parse_properties("WH+CM").unwrap(),
                "WH+CM".parse::<PropertySet>().unwrap()
            );
            assert!(parse_properties("XX").is_err());
        }
    }
}

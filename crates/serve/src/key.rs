//! Cache keys identifying one mechanism design.
//!
//! The serving layer used to define its own `MechanismKey`; the key type now
//! lives in the core crate as [`cpm_core::SpecKey`] — the bit-exact projection
//! of a [`cpm_core::MechanismSpec`] — so the cache, the wire front end, and the
//! offline design path all agree on what identifies a design.  This module
//! re-exports it (plus [`cpm_core::ObjectiveKey`]) and keeps a deprecated alias
//! for the old name.

pub use cpm_core::{ObjectiveKey, SpecKey};

/// The old name of the serving cache key.
#[deprecated(
    since = "0.1.0",
    note = "the key type moved to the core crate; use `cpm_core::SpecKey` \
            (same fields, same constructors)"
)]
pub type MechanismKey = SpecKey;

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, Property, PropertySet};

    #[test]
    fn the_serve_key_is_the_core_spec_key() {
        // One key type across the workspace: what `cpm-serve` hands the cache is
        // exactly what `MechanismSpec::key()` produces.
        let alpha = Alpha::new(0.9).unwrap();
        let properties = PropertySet::empty().with(Property::WeakHonesty);
        let key = SpecKey::with_objective(8, alpha, properties, ObjectiveKey::L1);
        let spec = key.spec().build().unwrap();
        assert_eq!(spec.key(), key);
        #[allow(deprecated)]
        let legacy: MechanismKey = key;
        assert_eq!(legacy, key);
    }
}

//! Cache keys identifying one mechanism design.
//!
//! A deployment asks for the same design over and over: the expensive LP solve is
//! keyed by what went *into* it — the group size, the privacy level, the requested
//! structural properties, and the objective.  [`MechanismKey`] packs those four
//! into a hashable value.  Floating α is keyed **bit-exactly** through
//! [`cpm_core::AlphaKey`] (see `Alpha::key_bits`): two requests share a design iff
//! their α is the same `f64`, with no epsilon comparisons anywhere.

use std::fmt;

use cpm_core::{Alpha, AlphaKey, Objective, PropertySet};

/// The objectives the serving layer designs for.
///
/// [`cpm_core::Objective`] is deliberately open-ended (arbitrary priors are
/// `Vec<f64>`), which makes it a poor hash key.  The serving layer keys the
/// closed, enumerable family actually used by the paper's designs — the uniform
/// prior, sum-aggregated losses — and converts to a full [`Objective`] on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectiveKey {
    /// The paper's headline `L0` (probability of any wrong answer).
    L0,
    /// `L0,d`: probability of an answer more than `d` steps from the truth.
    L0Beyond(usize),
    /// Expected absolute error `L1`.
    L1,
    /// Expected squared error `L2`.
    L2,
}

impl ObjectiveKey {
    /// The full [`Objective`] this key denotes.
    pub fn to_objective(self) -> Objective {
        match self {
            ObjectiveKey::L0 => Objective::l0(),
            ObjectiveKey::L0Beyond(d) => Objective::l0_beyond(d),
            ObjectiveKey::L1 => Objective::l1(),
            ObjectiveKey::L2 => Objective::l2(),
        }
    }

    /// Parse the paper's notation: `L0`, `L1`, `L2`, or `L0,d` (e.g. `L0,2`).
    /// Case-insensitive; an empty string means the default `L0`.
    pub fn parse(text: &str) -> Option<ObjectiveKey> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Some(ObjectiveKey::L0);
        }
        match trimmed.to_ascii_uppercase().as_str() {
            "L0" => Some(ObjectiveKey::L0),
            "L1" => Some(ObjectiveKey::L1),
            "L2" => Some(ObjectiveKey::L2),
            upper => {
                let d = upper.strip_prefix("L0,")?.trim().parse().ok()?;
                Some(ObjectiveKey::L0Beyond(d))
            }
        }
    }

    /// The paper's name for the objective (`L0`, `L0,d`, `L1`, `L2`).
    pub fn name(self) -> String {
        self.to_objective().loss.name()
    }
}

impl fmt::Display for ObjectiveKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Everything that determines one mechanism design, as a hashable cache key:
/// `(n, bit-exact α, requested properties, objective)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MechanismKey {
    /// Group size `n` (the matrix is `(n+1) × (n+1)`).
    pub n: usize,
    /// The privacy parameter, keyed by its IEEE-754 bit pattern.
    pub alpha: AlphaKey,
    /// The requested structural properties (pre-closure; the design routine takes
    /// the implication closure itself, so `{CM}` and `{CM, CH, WH}` are distinct
    /// keys that map to the same mechanism — callers wanting maximal cache reuse
    /// should normalise with [`PropertySet::closure`] before keying).
    pub properties: PropertySet,
    /// The design objective.
    pub objective: ObjectiveKey,
}

impl MechanismKey {
    /// Build a key for the paper's default `L0` objective.
    pub fn new(n: usize, alpha: Alpha, properties: PropertySet) -> Self {
        MechanismKey {
            n,
            alpha: alpha.key(),
            properties,
            objective: ObjectiveKey::L0,
        }
    }

    /// Build a key with an explicit objective.
    pub fn with_objective(
        n: usize,
        alpha: Alpha,
        properties: PropertySet,
        objective: ObjectiveKey,
    ) -> Self {
        MechanismKey {
            n,
            alpha: alpha.key(),
            properties,
            objective,
        }
    }

    /// The α value this key denotes.
    #[inline]
    pub fn alpha_value(&self) -> Alpha {
        self.alpha.alpha()
    }
}

impl fmt::Display for MechanismKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(n={}, α={}, {}, {})",
            self.n, self.alpha, self.properties, self.objective
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::Property;

    #[test]
    fn objective_key_parses_the_paper_notation() {
        assert_eq!(ObjectiveKey::parse(""), Some(ObjectiveKey::L0));
        assert_eq!(ObjectiveKey::parse("l0"), Some(ObjectiveKey::L0));
        assert_eq!(ObjectiveKey::parse("L1"), Some(ObjectiveKey::L1));
        assert_eq!(ObjectiveKey::parse("L2"), Some(ObjectiveKey::L2));
        assert_eq!(ObjectiveKey::parse("L0,2"), Some(ObjectiveKey::L0Beyond(2)));
        assert_eq!(ObjectiveKey::parse("nope"), None);
        assert_eq!(ObjectiveKey::L0Beyond(3).name(), "L0,3");
    }

    #[test]
    fn keys_distinguish_every_component_and_collide_on_equal_floats() {
        use std::collections::HashSet;
        let alpha = Alpha::new(0.9).unwrap();
        let base = MechanismKey::new(8, alpha, PropertySet::empty());
        let mut set = HashSet::new();
        set.insert(base);
        // Same α parsed a second way collides (bit equality).
        let reparsed = Alpha::new("0.9".parse::<f64>().unwrap()).unwrap();
        assert!(!set.insert(MechanismKey::new(8, reparsed, PropertySet::empty())));
        // Changing any component yields a fresh key.
        assert!(set.insert(MechanismKey::new(9, alpha, PropertySet::empty())));
        assert!(set.insert(MechanismKey::new(
            8,
            Alpha::new(0.91).unwrap(),
            PropertySet::empty()
        )));
        assert!(set.insert(MechanismKey::new(
            8,
            alpha,
            PropertySet::empty().with(Property::WeakHonesty)
        )));
        assert!(set.insert(MechanismKey::with_objective(
            8,
            alpha,
            PropertySet::empty(),
            ObjectiveKey::L1
        )));
    }
}

//! The transport-agnostic protocol layer: `bytes → Op → response bytes`.
//!
//! [`crate::frontend`] historically mixed three concerns — framing, op
//! dispatch, and blocking I/O.  This module pulls the first two out into a
//! *pull-based state machine* ([`ProtoConnection`]) that owns no socket: a
//! transport (the blocking `serve_stdio` loop, or the poll reactor in
//! [`crate::net`]) feeds it raw bytes with [`ProtoConnection::ingest`] and
//! drains response bytes from [`ProtoConnection::pending_output`].  The same
//! dispatcher therefore serves every transport bit-identically.
//!
//! ## Content negotiation (by first bytes)
//!
//! A connection's byte stream is sniffed once, then each frame payload again:
//!
//! * `GET ` as the first four bytes of a *connection* switches it into a
//!   one-shot HTTP mode serving `GET /metrics` (the Prometheus exposition) —
//!   an HTTP request line can never be a valid frame length prefix below
//!   [`crate::frontend::MAX_FRAME_LEN`], so the sniff is unambiguous.
//! * Inside the length-prefixed framing, a payload starting `b"CPMR"` is a
//!   binary report batch ([`cpm_collect::wire`]), `b"CPMF"` is a compact
//!   binary request frame (below), and anything else is UTF-8 JSON
//!   ([`crate::frontend::WireRequest`]).  JSON can never start with either
//!   magic.
//!
//! ## The `b"CPMF"` compact binary frame format
//!
//! All integers little-endian, built from [`cpm_wire`] primitives; every
//! field validated on decode, trailing bytes refused.
//!
//! ```text
//! header (8 bytes)                     body (op-specific)
//! +-------+---------+------+-----+    privatize: spec key (16B) + u32-count inputs
//! | magic | version | kind | op  |    warm/estimate: spec key (16B)
//! | 4B    | u16     | u8   | u8  |    report: spec key (16B) + u32-count outputs
//! +-------+---------+------+-----+    stats / metrics / shutdown: empty
//! ```
//!
//! `kind` is 0 for requests, 1 for responses.  A response body mirrors
//! [`crate::frontend::WireResponse`] field-for-field (`ok`, `error`,
//! `outputs`, the six counter fields, `metrics`, `ingested`, `rejected`,
//! `reports`, `estimates`, `variances`), so the binary codec round-trips
//! every op bit-exactly against the JSON codec — a property pinned by the
//! `proto_differential` test suite.  Responses are encoded in the codec the
//! request arrived in; `CPMR` report batches keep their JSON acknowledgement
//! for backward compatibility.
//!
//! ## Per-connection report rate limiting
//!
//! Reports are the one op an untrusted client can spam cheaply, so each
//! connection carries an optional token bucket (`CPM_REPORT_RATE` reports per
//! second, burst = one second's worth): a `report` op or `CPMR` batch whose
//! record count exceeds the available tokens is refused with a soft failure
//! and counted in `cpm_report_rate_limited_total` — the connection itself
//! stays up.

use std::io;
use std::time::Instant;

use cpm_core::{Alpha, ObjectiveKey, PropertySet, SpecKey};
use cpm_wire::{put_spec_key, take_spec_key, Reader, Wire};

use crate::engine::{Engine, Request};
use crate::frontend::{ConnectionSummary, WireRequest, WireResponse, MAX_FRAME_LEN};

/// Leading bytes of a compact binary request/response frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CPMF";

/// Current binary frame version; decoding accepts exactly this version.
pub const FRAME_VERSION: u16 = 1;

/// Bytes in the binary frame header (magic + version + kind + op).
pub const FRAME_HEADER_LEN: usize = 8;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;

const OP_PRIVATIZE: u8 = 0;
const OP_WARM: u8 = 1;
const OP_STATS: u8 = 2;
const OP_METRICS: u8 = 3;
const OP_REPORT: u8 = 4;
const OP_ESTIMATE: u8 = 5;
const OP_SHUTDOWN: u8 = 6;

/// Ceiling on buffered HTTP request headers; a client trickling an unbounded
/// header must not grow the connection buffer forever.
const MAX_HTTP_HEADER: usize = 8 * 1024;

/// Ceiling on the group size `n` a wire request may name.  Designing a
/// mechanism allocates an `(n+1)²` matrix, so an unauthenticated request
/// naming an arbitrary `n` (one hostile `warm` frame with `n = u32::MAX`)
/// would be a single-frame memory bomb.  The paper's experiments top out at
/// `n` in the hundreds; 4096 leaves generous headroom while capping the
/// worst-case design at ~134 MB.
///
/// This is also the serving tier's *report-ingestion* ceiling, on every path
/// (the JSON `report` op, `CPMF` report frames, and `CPMR` batches): every
/// collected key is eventually designed — by the `estimate` op or the
/// background snapshot flusher — so the collector must never hold a key the
/// design path would refuse.  The `CPMR` wire format itself admits group
/// sizes up to [`cpm_collect::REPORT_MAX_N`] for library consumers; the
/// serve tier counts records above [`MAX_WIRE_N`] as rejected.
pub const MAX_WIRE_N: usize = 4096;

/// One decoded request, independent of the codec it arrived in.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Draw one privatized output per input from the design for `key`.
    Privatize {
        /// The mechanism design to draw from.
        key: SpecKey,
        /// True counts to privatize.
        inputs: Vec<usize>,
    },
    /// Design (or confirm residency of) one key.
    Warm {
        /// The key to design.
        key: SpecKey,
    },
    /// Accumulate privatized outputs for one key (the JSON / CPMF form).
    Report {
        /// The mechanism the outputs were drawn from.
        key: SpecKey,
        /// The privatized outputs.
        outputs: Vec<usize>,
    },
    /// Accumulate a decoded `b"CPMR"` batch (mixed keys).
    ReportBatch(
        /// The decoded reports.
        Vec<cpm_collect::Report>,
    ),
    /// Invert the design over everything collected for one key.
    Estimate {
        /// The key to estimate.
        key: SpecKey,
    },
    /// Cumulative cache counters.
    Stats,
    /// The Prometheus-style metrics exposition.
    Metrics,
    /// Close this connection (after acknowledging).
    Shutdown,
}

impl Op {
    /// The closed metric label set (`cpm_wire_requests_total{op=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            Op::Privatize { .. } => "privatize",
            Op::Warm { .. } => "warm",
            Op::Report { .. } | Op::ReportBatch(_) => "report",
            Op::Estimate { .. } => "estimate",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }

    fn binary_tag(&self) -> u8 {
        match self {
            Op::Privatize { .. } => OP_PRIVATIZE,
            Op::Warm { .. } => OP_WARM,
            Op::Report { .. } | Op::ReportBatch(_) => OP_REPORT,
            Op::Estimate { .. } => OP_ESTIMATE,
            Op::Stats => OP_STATS,
            Op::Metrics => OP_METRICS,
            Op::Shutdown => OP_SHUTDOWN,
        }
    }
}

/// Which wire codec a frame arrived in (responses mirror the request codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// UTF-8 JSON payloads (and `CPMR` batches, whose acks are JSON).
    Json,
    /// Compact `b"CPMF"` binary frames.
    Binary,
}

/// Build the mechanism key a JSON wire request denotes.
pub(crate) fn parse_key(request: &WireRequest) -> Result<SpecKey, String> {
    if request.n > MAX_WIRE_N {
        return Err(format!(
            "group size n={} exceeds the serving ceiling of {MAX_WIRE_N}",
            request.n
        ));
    }
    let alpha = Alpha::new(request.alpha).map_err(|e| e.to_string())?;
    let properties: PropertySet = request
        .properties
        .parse()
        .map_err(|e: cpm_core::CoreError| e.to_string())?;
    let objective = ObjectiveKey::parse(&request.objective)
        .ok_or_else(|| format!("unknown objective {:?}", request.objective))?;
    Ok(SpecKey::with_objective(
        request.n, alpha, properties, objective,
    ))
}

/// Fold a JSON wire op name into the closed label set (unknown ops become
/// `other`) so a hostile client cannot grow the metrics registry unboundedly.
pub(crate) fn normalized_op(op: &str) -> &'static str {
    match op {
        "" | "privatize" => "privatize",
        "warm" => "warm",
        "report" => "report",
        "estimate" => "estimate",
        "stats" => "stats",
        "metrics" => "metrics",
        "shutdown" => "shutdown",
        _ => "other",
    }
}

/// Translate a decoded JSON request into an [`Op`].
pub fn op_from_request(request: &WireRequest) -> Result<Op, String> {
    match request.op.as_str() {
        "" | "privatize" => Ok(Op::Privatize {
            key: parse_key(request)?,
            inputs: request.inputs.clone(),
        }),
        "warm" => Ok(Op::Warm {
            key: parse_key(request)?,
        }),
        "report" => {
            let key = parse_key(request)?;
            // parse_key already enforced the MAX_WIRE_N ceiling; a zero group
            // size has no output range, so refuse it explicitly rather than
            // letting the collector silently count every output as rejected.
            if key.n == 0 {
                return Err("report group size n must be at least 1".to_string());
            }
            Ok(Op::Report {
                key,
                outputs: request.reports.clone(),
            })
        }
        "estimate" => Ok(Op::Estimate {
            key: parse_key(request)?,
        }),
        "stats" => Ok(Op::Stats),
        "metrics" => Ok(Op::Metrics),
        "shutdown" => Ok(Op::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Whether a frame payload is a compact binary request/response frame.
pub fn is_binary_frame(payload: &[u8]) -> bool {
    payload.len() >= FRAME_MAGIC.len() && payload[..FRAME_MAGIC.len()] == FRAME_MAGIC
}

/// Encode an [`Op`] as a `b"CPMF"` request frame payload.
///
/// Fails (with a human-readable reason) when the op cannot be represented:
/// a key outside the binary codec's bounds, or a `ReportBatch` (which has its
/// own `b"CPMR"` format).
pub fn encode_request(op: &Op) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 24);
    out.extend_from_slice(&FRAME_MAGIC);
    FRAME_VERSION.put(&mut out);
    out.push(KIND_REQUEST);
    out.push(op.binary_tag());
    match op {
        Op::Privatize { key, inputs } => {
            put_spec_key(key, &mut out).map_err(|e| e.to_string())?;
            put_u32_seq(inputs, &mut out)?;
        }
        Op::Warm { key } | Op::Estimate { key } => {
            put_spec_key(key, &mut out).map_err(|e| e.to_string())?;
        }
        Op::Report { key, outputs } => {
            put_spec_key(key, &mut out).map_err(|e| e.to_string())?;
            put_u32_seq(outputs, &mut out)?;
        }
        Op::ReportBatch(_) => {
            return Err("report batches travel as CPMR frames, not CPMF".to_string())
        }
        Op::Stats | Op::Metrics | Op::Shutdown => {}
    }
    Ok(out)
}

fn put_u32_seq(values: &[usize], out: &mut Vec<u8>) -> Result<(), String> {
    if values.len() > u32::MAX as usize {
        return Err(format!(
            "sequence of {} exceeds the u32 count",
            values.len()
        ));
    }
    (values.len() as u32).put(out);
    for &value in values {
        u32::try_from(value)
            .map_err(|_| format!("value {value} exceeds the u32 wire field"))?
            .put(out);
    }
    Ok(())
}

fn take_u32_seq(reader: &mut Reader<'_>) -> Result<Vec<usize>, String> {
    let values: Vec<u32> = Vec::take(reader).map_err(|e| e.to_string())?;
    Ok(values.into_iter().map(|v| v as usize).collect())
}

/// Decode a spec key and apply the serving [`MAX_WIRE_N`] ceiling — binary
/// frames get the same group-size bound as the JSON path.
fn take_bounded_key(reader: &mut Reader<'_>) -> Result<SpecKey, String> {
    let key = take_spec_key(reader).map_err(|e| e.to_string())?;
    if key.n > MAX_WIRE_N {
        return Err(format!(
            "group size n={} exceeds the serving ceiling of {MAX_WIRE_N}",
            key.n
        ));
    }
    Ok(key)
}

/// Decode a `b"CPMF"` request frame payload into its [`Op`], validating the
/// header, every field, and the absence of trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Op, String> {
    if !is_binary_frame(payload) {
        return Err("payload does not start with the CPMF frame magic".to_string());
    }
    if payload.len() < FRAME_HEADER_LEN {
        return Err(format!(
            "binary frame of {} bytes is shorter than the {FRAME_HEADER_LEN}-byte header",
            payload.len()
        ));
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().expect("2 bytes"));
    if version != FRAME_VERSION {
        return Err(format!(
            "unsupported binary frame version {version} (decoder speaks {FRAME_VERSION})"
        ));
    }
    if payload[6] != KIND_REQUEST {
        return Err(format!("frame kind {} is not a request", payload[6]));
    }
    let tag = payload[7];
    let mut reader = Reader::new(&payload[FRAME_HEADER_LEN..]);
    let op = match tag {
        OP_PRIVATIZE => Op::Privatize {
            key: take_bounded_key(&mut reader)?,
            inputs: take_u32_seq(&mut reader)?,
        },
        OP_WARM => Op::Warm {
            key: take_bounded_key(&mut reader)?,
        },
        OP_REPORT => Op::Report {
            key: take_bounded_key(&mut reader)?,
            outputs: take_u32_seq(&mut reader)?,
        },
        OP_ESTIMATE => Op::Estimate {
            key: take_bounded_key(&mut reader)?,
        },
        OP_STATS => Op::Stats,
        OP_METRICS => Op::Metrics,
        OP_SHUTDOWN => Op::Shutdown,
        other => return Err(format!("unknown binary op tag {other}")),
    };
    if !reader.is_empty() {
        return Err(format!(
            "binary frame carries {} trailing byte(s) after its body",
            reader.remaining()
        ));
    }
    Ok(op)
}

/// Encode a response as a `b"CPMF"` response frame payload, mirroring
/// [`WireResponse`] field-for-field.
pub fn encode_response(tag: u8, response: &WireResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 64 + response.metrics.len());
    out.extend_from_slice(&FRAME_MAGIC);
    FRAME_VERSION.put(&mut out);
    out.push(KIND_RESPONSE);
    out.push(tag);
    response.ok.put(&mut out);
    response.error.put(&mut out);
    // Outputs fit u32 by construction: the binary codec bounds every key's
    // group size at `cpm_wire::MAX_GROUP_SIZE`, and outputs never exceed `n`.
    (response.outputs.len() as u32).put(&mut out);
    for &output in &response.outputs {
        (output as u32).put(&mut out);
    }
    response.cache_hits.put(&mut out);
    response.cache_misses.put(&mut out);
    response.design_solves.put(&mut out);
    response.entries.put(&mut out);
    response.design_micros.put(&mut out);
    response.sample_micros.put(&mut out);
    response.metrics.put(&mut out);
    response.ingested.put(&mut out);
    response.rejected.put(&mut out);
    response.reports.put(&mut out);
    response.estimates.put(&mut out);
    response.variances.put(&mut out);
    out
}

/// Decode a `b"CPMF"` response frame payload into `(op tag, response)` —
/// the client half of the binary codec, used by tests, benches, and probes.
pub fn decode_response(payload: &[u8]) -> Result<(u8, WireResponse), String> {
    if !is_binary_frame(payload) {
        return Err("payload does not start with the CPMF frame magic".to_string());
    }
    if payload.len() < FRAME_HEADER_LEN {
        return Err("binary response frame is shorter than its header".to_string());
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().expect("2 bytes"));
    if version != FRAME_VERSION {
        return Err(format!("unsupported binary frame version {version}"));
    }
    if payload[6] != KIND_RESPONSE {
        return Err(format!("frame kind {} is not a response", payload[6]));
    }
    let tag = payload[7];
    let mut reader = Reader::new(&payload[FRAME_HEADER_LEN..]);
    let mut take = || -> Result<WireResponse, cpm_wire::DecodeError> {
        Ok(WireResponse {
            ok: bool::take(&mut reader)?,
            error: String::take(&mut reader)?,
            outputs: Vec::<u32>::take(&mut reader)?
                .into_iter()
                .map(|v| v as usize)
                .collect(),
            cache_hits: u64::take(&mut reader)?,
            cache_misses: u64::take(&mut reader)?,
            design_solves: u64::take(&mut reader)?,
            entries: u64::take(&mut reader)?,
            design_micros: u64::take(&mut reader)?,
            sample_micros: u64::take(&mut reader)?,
            metrics: String::take(&mut reader)?,
            ingested: u64::take(&mut reader)?,
            rejected: u64::take(&mut reader)?,
            reports: u64::take(&mut reader)?,
            estimates: Vec::take(&mut reader)?,
            variances: Vec::take(&mut reader)?,
        })
    };
    let response = take().map_err(|e| e.to_string())?;
    if !reader.is_empty() {
        return Err(format!(
            "binary response carries {} trailing byte(s)",
            reader.remaining()
        ));
    }
    Ok((tag, response))
}

fn failure(message: String) -> WireResponse {
    WireResponse {
        ok: false,
        error: message,
        ..WireResponse::default()
    }
}

/// Ingest decoded reports under the serving ceiling: records naming a group
/// size beyond [`MAX_WIRE_N`] are counted as rejected without ever reaching
/// the collector.  The `CPMR` format admits larger keys than the serve tier
/// is willing to design, and a key that cannot be designed can never be
/// estimated — admitting it would only hand the background flusher an
/// attacker-sized design matrix.
fn ingest_reports_capped(engine: &Engine, reports: &[cpm_collect::Report]) -> WireResponse {
    let oversized = reports.iter().filter(|r| r.key.n > MAX_WIRE_N).count() as u64;
    let summary = if oversized == 0 {
        engine.collector().ingest_reports(reports)
    } else {
        cpm_obs::counter!("cpm_report_oversized_total").add(oversized);
        let admissible: Vec<cpm_collect::Report> = reports
            .iter()
            .filter(|r| r.key.n <= MAX_WIRE_N)
            .copied()
            .collect();
        engine.collector().ingest_reports(&admissible)
    };
    WireResponse {
        ok: true,
        ingested: summary.accepted,
        rejected: summary.rejected + oversized,
        ..WireResponse::default()
    }
}

/// Process one decoded [`Op`] against the engine, with the standard metric
/// discipline (request counter on entry, latency histogram after the work).
/// Returns the response and whether the connection should close.
pub fn dispatch_op(engine: &Engine, op: &Op) -> (WireResponse, bool) {
    let label = op.label();
    if cpm_obs::enabled() {
        cpm_obs::registry()
            .counter(&format!("cpm_wire_requests_total{{op=\"{label}\"}}"))
            .inc();
    }
    let op_started = Instant::now();
    let outcome = dispatch_inner(engine, op);
    if cpm_obs::enabled() {
        cpm_obs::registry()
            .histogram(&format!("cpm_wire_op_nanos{{op=\"{label}\"}}"))
            .record_duration(op_started.elapsed());
    }
    outcome
}

pub(crate) fn dispatch_inner(engine: &Engine, op: &Op) -> (WireResponse, bool) {
    match op {
        Op::Privatize { key, inputs } => {
            let batch: Vec<Request> = inputs
                .iter()
                .map(|&input| Request::new(*key, input))
                .collect();
            match engine.privatize_batch(&batch) {
                Ok(outcome) => (
                    WireResponse {
                        ok: true,
                        outputs: outcome.outputs,
                        cache_hits: outcome.stats.cache_hits,
                        cache_misses: outcome.stats.cache_misses,
                        design_solves: outcome.stats.cache_misses,
                        entries: engine.cache().len() as u64,
                        design_micros: outcome.stats.design_time.as_micros() as u64,
                        sample_micros: outcome.stats.sample_time.as_micros() as u64,
                        ..WireResponse::default()
                    },
                    false,
                ),
                Err(error) => (failure(error.to_string()), false),
            }
        }
        Op::Warm { key } => match engine.warm(&[*key]) {
            Ok(()) => (
                WireResponse {
                    ok: true,
                    entries: engine.cache().len() as u64,
                    ..WireResponse::default()
                },
                false,
            ),
            Err(error) => (failure(error.to_string()), false),
        },
        Op::Report { key, outputs } => {
            let summary = engine
                .collector()
                .ingest_batch(key, outputs.iter().copied());
            (
                WireResponse {
                    ok: true,
                    ingested: summary.accepted,
                    rejected: summary.rejected,
                    ..WireResponse::default()
                },
                false,
            )
        }
        Op::ReportBatch(reports) => (ingest_reports_capped(engine, reports), false),
        Op::Estimate { key } => match engine.collector().observed(key) {
            Some(observed) => {
                match engine
                    .design(key)
                    .map_err(|e| e.to_string())
                    .and_then(|design| {
                        cpm_collect::estimate_from_design(&design, &observed)
                            .map_err(|e| e.to_string())
                    }) {
                    Ok(freq) => (
                        WireResponse {
                            ok: true,
                            reports: freq.total_reports,
                            estimates: freq.estimates,
                            variances: freq.variances,
                            ..WireResponse::default()
                        },
                        false,
                    ),
                    Err(message) => (failure(message), false),
                }
            }
            None => (
                failure("no reports collected for this key yet".to_string()),
                false,
            ),
        },
        Op::Stats => {
            let stats = engine.cache_stats();
            (
                WireResponse {
                    ok: true,
                    cache_hits: stats.hits,
                    cache_misses: stats.misses,
                    design_solves: stats.design_solves,
                    entries: stats.entries as u64,
                    design_micros: stats.design_nanos / 1_000,
                    ..WireResponse::default()
                },
                false,
            )
        }
        Op::Metrics => (
            WireResponse {
                ok: true,
                metrics: cpm_obs::registry().render(),
                ..WireResponse::default()
            },
            false,
        ),
        Op::Shutdown => (
            WireResponse {
                ok: true,
                ..WireResponse::default()
            },
            true,
        ),
    }
}

/// A continuous-refill token bucket: `rate` tokens per second, burst capacity
/// of one second's worth (at least 1).
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket admitting `rate` units per second, starting full.
    pub fn new(rate: f64, now: Instant) -> Self {
        let burst = rate.max(1.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// Try to spend `cost` tokens at time `now`; `false` leaves the bucket
    /// untouched (a refused batch does not drain the budget of later ones).
    pub fn admit(&mut self, cost: f64, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if cost <= self.tokens {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

/// Per-connection protocol configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProtoConfig {
    /// Reports per second one connection may submit (`None` = unlimited).
    pub report_rate: Option<f64>,
    /// Whether the connection-level `GET ` sniff serves HTTP `/metrics`.
    pub http_metrics: bool,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            report_rate: None,
            http_metrics: true,
        }
    }
}

impl ProtoConfig {
    /// Read overrides from the environment: `CPM_REPORT_RATE` (reports per
    /// second per connection; unset, empty, or `0` means unlimited).
    pub fn from_env() -> Self {
        let report_rate = std::env::var("CPM_REPORT_RATE")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|&rate| rate > 0.0);
        ProtoConfig {
            report_rate,
            ..ProtoConfig::default()
        }
    }
}

/// Protocol-level failures that end a connection (soft per-frame failures are
/// answered in-band and do NOT raise these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A frame length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLong(usize),
    /// The stream ended inside a frame, length prefix, or HTTP header.
    TruncatedInput,
    /// An HTTP request's headers exceed the buffered ceiling.
    HttpHeaderTooLong,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::FrameTooLong(len) => {
                write!(f, "frame length {len} exceeds MAX_FRAME_LEN")
            }
            ProtoError::TruncatedInput => write!(f, "EOF inside a frame"),
            ProtoError::HttpHeaderTooLong => {
                write!(f, "HTTP request headers exceed {MAX_HTTP_HEADER} bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(error: ProtoError) -> Self {
        let kind = match error {
            ProtoError::TruncatedInput => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, error.to_string())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Sniffing the first four connection bytes (framed vs HTTP).
    Start,
    /// Length-prefixed frames (JSON / CPMF / CPMR payloads).
    Framed,
    /// One-shot HTTP request (`GET /metrics`).
    Http,
}

/// The pull-based per-connection protocol state machine.
///
/// Feed raw bytes with [`ingest`](Self::ingest); completed frames are
/// decoded, dispatched against the engine, and their responses appended to
/// the output buffer, which the transport drains via
/// [`pending_output`](Self::pending_output) / [`advance_output`](Self::advance_output).
/// The machine never blocks and owns no I/O.
#[derive(Debug)]
pub struct ProtoConnection {
    config: ProtoConfig,
    mode: Mode,
    inbuf: Vec<u8>,
    consumed: usize,
    outbuf: Vec<u8>,
    out_cursor: usize,
    closing: bool,
    limiter: Option<TokenBucket>,
    summary: ConnectionSummary,
}

impl ProtoConnection {
    /// A fresh connection in sniffing state.
    pub fn new(config: ProtoConfig) -> Self {
        ProtoConnection {
            config,
            mode: Mode::Start,
            inbuf: Vec::new(),
            consumed: 0,
            outbuf: Vec::new(),
            out_cursor: 0,
            closing: false,
            limiter: config
                .report_rate
                .map(|rate| TokenBucket::new(rate, Instant::now())),
            summary: ConnectionSummary::default(),
        }
    }

    /// Feed bytes received from the transport, processing every completed
    /// frame.  A hard protocol violation (oversized frame, oversized HTTP
    /// header) is returned — the transport should close the connection; soft
    /// failures are answered in-band and return `Ok`.
    pub fn ingest(&mut self, engine: &Engine, bytes: &[u8]) -> Result<(), ProtoError> {
        if self.closing {
            // Post-close bytes are discarded, never buffered: a peer that
            // keeps writing after `shutdown` (while refusing to read the ack,
            // so the connection cannot finish closing) must not grow this
            // buffer without bound.
            return Ok(());
        }
        self.inbuf.extend_from_slice(bytes);
        self.pump(engine)
    }

    /// Signal clean EOF from the peer.  Errors if the stream ended inside a
    /// partial frame or header.
    pub fn finish(&mut self) -> Result<(), ProtoError> {
        self.closing = true;
        if self.consumed < self.inbuf.len() {
            return Err(ProtoError::TruncatedInput);
        }
        Ok(())
    }

    /// Response bytes waiting to be written to the transport.
    pub fn pending_output(&self) -> &[u8] {
        &self.outbuf[self.out_cursor..]
    }

    /// Mark `n` output bytes as written.
    pub fn advance_output(&mut self, n: usize) {
        self.out_cursor += n;
        debug_assert!(self.out_cursor <= self.outbuf.len());
        if self.out_cursor == self.outbuf.len() {
            self.outbuf.clear();
            self.out_cursor = 0;
        }
    }

    /// Whether the connection should close once pending output is flushed
    /// (a `shutdown` op was acknowledged, or the HTTP response was served).
    pub fn closing(&self) -> bool {
        self.closing
    }

    /// Whether the transport can close now: closing and nothing left to write.
    pub fn wants_close(&self) -> bool {
        self.closing && self.pending_output().is_empty()
    }

    /// Frame/draw totals so far.
    pub fn summary(&self) -> ConnectionSummary {
        self.summary
    }

    fn pump(&mut self, engine: &Engine) -> Result<(), ProtoError> {
        loop {
            if self.closing {
                // Post-shutdown bytes are never processed (pinned behavior);
                // drop whatever arrived pipelined behind the closing frame so
                // the buffer does not outlive its last useful byte.
                self.consumed = 0;
                self.inbuf.clear();
                return Ok(());
            }
            let available = self.inbuf.len() - self.consumed;
            match self.mode {
                Mode::Start => {
                    if available < 4 {
                        return Ok(());
                    }
                    let head = &self.inbuf[self.consumed..self.consumed + 4];
                    if self.config.http_metrics && head == b"GET " {
                        self.mode = Mode::Http;
                    } else {
                        self.mode = Mode::Framed;
                    }
                }
                Mode::Framed => {
                    if available < 4 {
                        return Ok(());
                    }
                    let at = self.consumed;
                    let len =
                        u32::from_le_bytes(self.inbuf[at..at + 4].try_into().expect("4 bytes"))
                            as usize;
                    if len > MAX_FRAME_LEN {
                        return Err(ProtoError::FrameTooLong(len));
                    }
                    if available < 4 + len {
                        return Ok(());
                    }
                    // Split the borrow: the frame is copied out so the
                    // dispatcher can append to outbuf freely.  Frames are
                    // bounded by MAX_FRAME_LEN, so the copy is bounded too.
                    let payload: Vec<u8> = self.inbuf[at + 4..at + 4 + len].to_vec();
                    self.consumed += 4 + len;
                    self.drain_consumed();
                    self.process_frame(engine, &payload);
                }
                Mode::Http => {
                    let buffered = &self.inbuf[self.consumed..];
                    match find_header_end(buffered) {
                        Some(end) => {
                            let header: Vec<u8> = buffered[..end].to_vec();
                            self.consumed += end;
                            self.drain_consumed();
                            self.process_http(&header);
                            self.closing = true;
                        }
                        None if buffered.len() > MAX_HTTP_HEADER => {
                            return Err(ProtoError::HttpHeaderTooLong);
                        }
                        None => return Ok(()),
                    }
                }
            }
        }
    }

    /// Reclaim consumed input so a long-lived connection's buffer stays
    /// proportional to its *unprocessed* bytes, not its lifetime traffic.
    fn drain_consumed(&mut self) {
        if self.consumed > 0 {
            self.inbuf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    fn process_frame(&mut self, engine: &Engine, payload: &[u8]) {
        self.summary.frames += 1;
        let (codec, tag, response, close) = if cpm_collect::wire::is_report_frame(payload) {
            // CPMR batches keep their JSON acknowledgement (pinned from PR 9).
            (
                Codec::Json,
                OP_REPORT,
                self.process_report_frame(engine, payload),
                false,
            )
        } else if is_binary_frame(payload) {
            match decode_request(payload) {
                Ok(op) => {
                    let tag = op.binary_tag();
                    let (response, close) = match self.rate_limit_op(&op) {
                        Some(refused) => (refused, false),
                        None => dispatch_op(engine, &op),
                    };
                    (Codec::Binary, tag, response, close)
                }
                Err(message) => {
                    cpm_obs::counter!("cpm_net_frame_decode_errors_total").inc();
                    (
                        Codec::Binary,
                        0xFF,
                        failure(format!("malformed binary frame: {message}")),
                        false,
                    )
                }
            }
        } else {
            match std::str::from_utf8(payload)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    serde_json::from_str::<WireRequest>(text).map_err(|e| e.to_string())
                }) {
                Ok(request) => {
                    let refused = if normalized_op(&request.op) == "report" {
                        self.rate_limit(request.reports.len())
                    } else {
                        None
                    };
                    let (response, close) = match refused {
                        Some(refused) => (refused, false),
                        None => crate::frontend::dispatch(engine, &request),
                    };
                    (Codec::Json, 0, response, close)
                }
                Err(message) => {
                    cpm_obs::counter!("cpm_net_frame_decode_errors_total").inc();
                    (
                        Codec::Json,
                        0,
                        failure(format!("malformed request: {message}")),
                        false,
                    )
                }
            }
        };
        self.summary.draws += response.outputs.len() as u64;
        self.write_response(codec, tag, &response);
        if close {
            self.closing = true;
        }
    }

    /// Decode and ingest one binary `b"CPMR"` report frame, mirroring the
    /// JSON `report` op's metric discipline (counted on entry, even when the
    /// batch turns out malformed — preserved from the pre-reactor front end).
    fn process_report_frame(&mut self, engine: &Engine, payload: &[u8]) -> WireResponse {
        if cpm_obs::enabled() {
            cpm_obs::registry()
                .counter("cpm_wire_requests_total{op=\"report\"}")
                .inc();
        }
        let op_started = Instant::now();
        let response = match cpm_collect::wire::decode_batch(payload) {
            Ok(reports) => match self.rate_limit(reports.len()) {
                Some(refused) => refused,
                None => ingest_reports_capped(engine, &reports),
            },
            Err(error) => {
                cpm_obs::counter!("cpm_net_frame_decode_errors_total").inc();
                failure(format!("malformed report frame: {error}"))
            }
        };
        if cpm_obs::enabled() {
            cpm_obs::registry()
                .histogram("cpm_wire_op_nanos{op=\"report\"}")
                .record_duration(op_started.elapsed());
        }
        response
    }

    fn rate_limit_op(&mut self, op: &Op) -> Option<WireResponse> {
        match op {
            Op::Report { outputs, .. } => self.rate_limit(outputs.len()),
            Op::ReportBatch(reports) => self.rate_limit(reports.len()),
            _ => None,
        }
    }

    /// Apply the per-connection report token bucket to a batch of `count`
    /// reports; `Some(response)` refuses the batch without dispatching it.
    fn rate_limit(&mut self, count: usize) -> Option<WireResponse> {
        let limiter = self.limiter.as_mut()?;
        let cost = (count as f64).max(1.0);
        if limiter.admit(cost, Instant::now()) {
            return None;
        }
        cpm_obs::counter!("cpm_report_rate_limited_total").add(cost as u64);
        Some(failure(format!(
            "report rate limit exceeded for this connection ({count} reports refused)"
        )))
    }

    fn write_response(&mut self, codec: Codec, tag: u8, response: &WireResponse) {
        let payload = match codec {
            Codec::Json => serde_json::to_string(response)
                .expect("WireResponse always serializes")
                .into_bytes(),
            Codec::Binary => encode_response(tag, response),
        };
        debug_assert!(payload.len() <= MAX_FRAME_LEN, "response exceeds frame cap");
        self.outbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.outbuf.extend_from_slice(&payload);
    }

    fn process_http(&mut self, header: &[u8]) {
        self.summary.frames += 1;
        cpm_obs::counter!("cpm_http_requests_total").inc();
        let text = String::from_utf8_lossy(header);
        let mut parts = text.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        let (status, body) = if method != "GET" {
            ("405 Method Not Allowed", "only GET is served\n".to_string())
        } else if path == "/metrics" || path.starts_with("/metrics?") {
            ("200 OK", cpm_obs::registry().render())
        } else {
            ("404 Not Found", "try GET /metrics\n".to_string())
        };
        let head = format!(
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        self.outbuf.extend_from_slice(head.as_bytes());
        self.outbuf.extend_from_slice(body.as_bytes());
    }
}

/// Find the end of an HTTP header block (`\r\n\r\n`), returning the index one
/// past it.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(payload);
        bytes
    }

    fn spec_key(n: usize, alpha: f64) -> SpecKey {
        SpecKey::new(n, Alpha::new(alpha).unwrap(), PropertySet::empty())
    }

    fn read_frames(bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            frames.push(bytes[at + 4..at + 4 + len].to_vec());
            at += 4 + len;
        }
        frames
    }

    #[test]
    fn binary_request_round_trips_every_op() {
        let key = SpecKey::with_objective(
            16,
            Alpha::new(0.7).unwrap(),
            PropertySet::empty(),
            ObjectiveKey::L0Beyond(2),
        );
        let ops = [
            Op::Privatize {
                key,
                inputs: vec![0, 7, 16],
            },
            Op::Warm { key },
            Op::Report {
                key,
                outputs: vec![1, 2, 3],
            },
            Op::Estimate { key },
            Op::Stats,
            Op::Metrics,
            Op::Shutdown,
        ];
        for op in ops {
            let payload = encode_request(&op).unwrap();
            assert!(is_binary_frame(&payload));
            assert_eq!(decode_request(&payload).unwrap(), op);
        }
    }

    #[test]
    fn binary_response_round_trips_every_field() {
        let response = WireResponse {
            ok: true,
            error: "nope".to_string(),
            outputs: vec![0, 65_536],
            cache_hits: 1,
            cache_misses: 2,
            design_solves: 3,
            entries: 4,
            design_micros: 5,
            sample_micros: 6,
            metrics: "# TYPE x counter\nx 1\n".to_string(),
            ingested: 7,
            rejected: 8,
            reports: 9,
            estimates: vec![1.5, -0.25],
            variances: vec![0.125],
        };
        let payload = encode_response(OP_PRIVATIZE, &response);
        let (tag, decoded) = decode_response(&payload).unwrap();
        assert_eq!(tag, OP_PRIVATIZE);
        assert_eq!(format!("{decoded:?}"), format!("{response:?}"));
    }

    #[test]
    fn binary_decode_refuses_malformed_frames() {
        let key = spec_key(8, 0.9);
        let good = encode_request(&Op::Warm { key }).unwrap();
        // Truncations at every prefix length fail cleanly.
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong version.
        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(decode_request(&bad).unwrap_err().contains("version"));
        // Response kind where a request is expected.
        let mut bad = good.clone();
        bad[6] = KIND_RESPONSE;
        assert!(decode_request(&bad).unwrap_err().contains("not a request"));
        // Unknown op tag.
        let mut bad = good.clone();
        bad[7] = 0x7F;
        assert!(decode_request(&bad).unwrap_err().contains("unknown"));
        // Trailing bytes.
        let mut bad = good.clone();
        bad.push(0);
        assert!(decode_request(&bad).unwrap_err().contains("trailing"));
    }

    #[test]
    fn state_machine_serves_binary_and_json_on_one_connection() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let key = spec_key(6, 0.5);

        let binary = encode_request(&Op::Privatize {
            key,
            inputs: vec![0, 3, 6],
        })
        .unwrap();
        let json = br#"{"op": "stats"}"#;
        let mut input = frame(&binary);
        input.extend_from_slice(&frame(json));
        conn.ingest(&engine, &input).unwrap();

        let frames = read_frames(conn.pending_output());
        assert_eq!(frames.len(), 2);
        let (_, first) = decode_response(&frames[0]).unwrap();
        assert!(first.ok, "error: {}", first.error);
        assert_eq!(first.outputs.len(), 3);
        let second: WireResponse =
            serde_json::from_str(std::str::from_utf8(&frames[1]).unwrap()).unwrap();
        assert!(second.ok);
        assert_eq!(conn.summary().frames, 2);
        assert_eq!(conn.summary().draws, 3);
        assert!(!conn.closing());
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles_frames() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let input = frame(br#"{"op": "stats"}"#);
        for &byte in &input {
            conn.ingest(&engine, &[byte]).unwrap();
        }
        let frames = read_frames(conn.pending_output());
        assert_eq!(frames.len(), 1);
        conn.finish().unwrap();
    }

    #[test]
    fn shutdown_stops_processing_later_frames() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let mut input = frame(br#"{"op": "shutdown"}"#);
        input.extend_from_slice(&frame(br#"{"op": "stats"}"#));
        conn.ingest(&engine, &input).unwrap();
        assert!(conn.closing());
        assert_eq!(conn.summary().frames, 1, "post-shutdown frame unprocessed");
        assert_eq!(read_frames(conn.pending_output()).len(), 1);
        let pending = conn.pending_output().len();
        conn.advance_output(pending);
        assert!(conn.wants_close());
    }

    #[test]
    fn post_shutdown_bytes_are_discarded_not_buffered() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let mut input = frame(br#"{"op": "shutdown"}"#);
        // A partial frame pipelined behind the shutdown must be dropped, not
        // retained as "truncated input".
        input.extend_from_slice(&frame(br#"{"op": "stats"}"#)[..7]);
        conn.ingest(&engine, &input).unwrap();
        assert!(conn.closing());
        // A peer that keeps writing after shutdown is ignored outright.
        conn.ingest(&engine, &vec![0x55; 64 * 1024]).unwrap();
        assert_eq!(conn.summary().frames, 1);
        assert_eq!(read_frames(conn.pending_output()).len(), 1);
        // Nothing stayed buffered: EOF now is clean, not mid-frame.
        conn.finish().unwrap();
    }

    #[test]
    fn cpmr_records_beyond_the_serving_ceiling_are_rejected() {
        use cpm_collect::wire::{encode_batch, Report};
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let good = spec_key(8, 0.9);
        // Valid for the CPMR wire format (<= REPORT_MAX_N), but beyond what
        // the serve tier will ever design — it must never enter the collector.
        let oversized = spec_key(MAX_WIRE_N + 1, 0.9);
        let batch = encode_batch(&[
            Report::new(good, 3).unwrap(),
            Report::new(oversized, 0).unwrap(),
        ])
        .unwrap();
        conn.ingest(&engine, &frame(&batch)).unwrap();
        let frames = read_frames(conn.pending_output());
        let ack: WireResponse =
            serde_json::from_str(std::str::from_utf8(&frames[0]).unwrap()).unwrap();
        assert!(ack.ok, "error: {}", ack.error);
        assert_eq!(ack.ingested, 1);
        assert_eq!(ack.rejected, 1, "the oversized key must be refused");
        assert!(engine.collector().observed(&good).is_some());
        assert!(engine.collector().observed(&oversized).is_none());
    }

    #[test]
    fn oversized_prefixes_and_eof_mid_frame_are_hard_errors() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let oversized = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        assert_eq!(
            conn.ingest(&engine, &oversized),
            Err(ProtoError::FrameTooLong(MAX_FRAME_LEN + 1))
        );

        let mut conn = ProtoConnection::new(ProtoConfig::default());
        let mut truncated = 10u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(b"abc");
        conn.ingest(&engine, &truncated).unwrap();
        assert_eq!(conn.finish(), Err(ProtoError::TruncatedInput));
    }

    #[test]
    fn http_get_metrics_is_served_and_closes() {
        cpm_obs::counter!("cpm_wire_requests_total{op=\"stats\"}").inc();
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        conn.ingest(
            &engine,
            b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nUser-Agent: test\r\n\r\n",
        )
        .unwrap();
        assert!(conn.closing());
        let response = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain"));
        assert!(response.contains("cpm_wire_requests_total"), "{response}");

        // Unknown paths 404; the sniff only fires on the connection's first
        // bytes, so framed connections are unaffected.
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        conn.ingest(&engine, b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let response = String::from_utf8_lossy(conn.pending_output()).to_string();
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    }

    #[test]
    fn http_headers_cannot_grow_unboundedly() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        conn.ingest(&engine, b"GET /metrics HTTP/1.1\r\n").unwrap();
        let filler = vec![b'a'; MAX_HTTP_HEADER + 64];
        assert_eq!(
            conn.ingest(&engine, &filler),
            Err(ProtoError::HttpHeaderTooLong)
        );
    }

    #[test]
    fn report_rate_limit_refuses_over_budget_batches_softly() {
        let engine = Engine::with_defaults();
        let mut conn = ProtoConnection::new(ProtoConfig {
            report_rate: Some(10.0),
            http_metrics: true,
        });
        // First batch of 10 fits the burst; the immediate second batch does not.
        let batch = br#"{"op": "report", "n": 4, "alpha": 0.5, "reports": [0,1,2,3,4,0,1,2,3,4]}"#;
        conn.ingest(&engine, &frame(batch)).unwrap();
        conn.ingest(&engine, &frame(batch)).unwrap();
        let frames = read_frames(conn.pending_output());
        let first: WireResponse =
            serde_json::from_str(std::str::from_utf8(&frames[0]).unwrap()).unwrap();
        let second: WireResponse =
            serde_json::from_str(std::str::from_utf8(&frames[1]).unwrap()).unwrap();
        assert!(first.ok, "error: {}", first.error);
        assert_eq!(first.ingested, 10);
        assert!(!second.ok, "the second batch must be refused");
        assert!(second.error.contains("rate limit"), "{}", second.error);
        // The connection survives: a non-report op still works.
        conn.ingest(&engine, &frame(br#"{"op": "stats"}"#)).unwrap();
        let frames = read_frames(conn.pending_output());
        let third: WireResponse =
            serde_json::from_str(std::str::from_utf8(frames.last().unwrap()).unwrap()).unwrap();
        assert!(third.ok);
    }

    #[test]
    fn token_bucket_refills_continuously() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(100.0, start);
        assert!(bucket.admit(100.0, start), "burst = one second's worth");
        assert!(!bucket.admit(1.0, start), "empty immediately after");
        // 50 ms later, ~5 tokens have dripped back.
        let later = start + std::time::Duration::from_millis(50);
        assert!(bucket.admit(4.0, later));
        assert!(!bucket.admit(4.0, later));
        // A refused spend must not drain the bucket.
        let much_later = later + std::time::Duration::from_secs(10);
        assert!(bucket.admit(100.0, much_later), "bucket refilled to burst");
    }
}

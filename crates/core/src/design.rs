//! The typed design entry point: [`MechanismSpec`] → [`DesignedMechanism`].
//!
//! The paper's pipeline (Figure 5) turns *requested properties + objective +
//! (n, α)* into one of a handful of mechanisms.  Historically that pipeline was
//! reachable through several divergent free functions, each returning a
//! different shape; this module funnels every design through one typed path:
//!
//! ```
//! use cpm_core::prelude::*;
//!
//! let designed = MechanismSpec::new(4, Alpha::new(0.9).unwrap())
//!     .properties(PropertySet::empty().with(Property::Fairness))
//!     .objective(ObjectiveKey::L0)
//!     .build()
//!     .unwrap()
//!     .design()
//!     .unwrap();
//! assert_eq!(designed.choice(), Some(MechanismChoice::ExplicitFair));
//! assert!(designed.requested_satisfied());
//! ```
//!
//! * [`MechanismSpec`] is a validated builder over everything that determines a
//!   design: `n`, `α`, the requested [`PropertySet`], an [`ObjectiveKey`], the
//!   property-check tolerance, and optional solver overrides.  It has a
//!   canonical serde form and projects to a bit-exact, hashable [`SpecKey`].
//! * [`SpecKey`] is the cache identity of a design: `(n, bit-exact α via
//!   [`AlphaKey`], properties, objective)`.  Tolerance and solver overrides are
//!   deliberately excluded — they tune *how* a design is computed and checked,
//!   not *which* distribution it denotes.
//! * [`DesignedMechanism`] is the finished artifact: the matrix, the Figure-5
//!   [`MechanismChoice`] provenance, the solver statistics when an LP ran, the
//!   achieved [`PropertyReport`], the rescaled-`L0` score, and lazily-built
//!   [`MechanismSampler`] / [`AliasSampler`] accessors.  The whole artifact
//!   (minus the rebuildable samplers) is serde round-trippable, which is what
//!   makes warm-start snapshot files possible for the serving cache.

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use cpm_simplex::{SolveOptions, SolveStats};

use crate::alpha::{Alpha, AlphaKey};
use crate::error::CoreError;
use crate::lp::DesignProblem;
use crate::matrix::Mechanism;
use crate::objective::{rescaled_l0, ObjectiveKey};
use crate::properties::{PropertyReport, PropertySet};
use crate::sampling::{AliasSampler, MechanismSampler};
use crate::selection::{self, MechanismChoice};

/// Default absolute tolerance for the achieved-property report (matches the
/// tolerance the LP tests use for property checks on solved matrices).
pub const DEFAULT_PROPERTY_TOLERANCE: f64 = 1e-6;

// ---------------------------------------------------------------------------
// SpecKey
// ---------------------------------------------------------------------------

/// Everything that determines one mechanism design, as a bit-exact hashable
/// cache key: `(n, α by IEEE-754 bit pattern, requested properties, objective)`.
///
/// Two requests share a design iff their keys are equal; floating α is keyed
/// through [`AlphaKey`] so there are no epsilon comparisons anywhere.  The
/// properties are kept *pre-closure* — the design routine takes the implication
/// closure itself, so `{CM}` and `{CM, CH, WH}` are distinct keys that map to
/// the same mechanism; callers wanting maximal cache reuse should normalise
/// with [`PropertySet::closure`] before keying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecKey {
    /// Group size `n` (the matrix is `(n+1) × (n+1)`).
    pub n: usize,
    /// The privacy parameter, keyed by its IEEE-754 bit pattern.
    pub alpha: AlphaKey,
    /// The requested structural properties (pre-closure).
    pub properties: PropertySet,
    /// The design objective.
    pub objective: ObjectiveKey,
}

impl SpecKey {
    /// Build a key for the paper's default `L0` objective.
    pub fn new(n: usize, alpha: Alpha, properties: PropertySet) -> Self {
        SpecKey {
            n,
            alpha: alpha.key(),
            properties,
            objective: ObjectiveKey::L0,
        }
    }

    /// Build a key with an explicit objective.
    pub fn with_objective(
        n: usize,
        alpha: Alpha,
        properties: PropertySet,
        objective: ObjectiveKey,
    ) -> Self {
        SpecKey {
            n,
            alpha: alpha.key(),
            properties,
            objective,
        }
    }

    /// The α value this key denotes.
    #[inline]
    pub fn alpha_value(&self) -> Alpha {
        self.alpha.alpha()
    }

    /// The default-tuned [`MechanismSpec`] this key denotes (not yet validated —
    /// chain `.build()`; [`MechanismSpec::design`] validates either way).
    pub fn spec(&self) -> MechanismSpec {
        MechanismSpec::new(self.n, self.alpha_value())
            .properties(self.properties)
            .objective(self.objective)
    }
}

impl fmt::Display for SpecKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(n={}, α={}, {}, {})",
            self.n, self.alpha, self.properties, self.objective
        )
    }
}

impl Serialize for SpecKey {
    /// Canonical form: `{"n": …, "alpha": …, "properties": "{WH, CM}",
    /// "objective": "L0"}` — α bit-exact through the shortest-round-trip float
    /// formatting, properties and objective in the paper's notation.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_string(), self.n.to_value()),
            ("alpha".to_string(), self.alpha.to_value()),
            (
                "properties".to_string(),
                self.properties.to_string().to_value(),
            ),
            (
                "objective".to_string(),
                self.objective.to_string().to_value(),
            ),
        ])
    }
}

impl Deserialize for SpecKey {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = serde::as_object(value, "SpecKey")?;
        let field = |name: &str| {
            serde::object_get(pairs, name)
                .ok_or_else(|| serde::Error::missing_field("SpecKey", name))
        };
        let n = usize::from_value(field("n")?)?;
        let alpha = AlphaKey::from_value(field("alpha")?)?;
        let properties: PropertySet = String::from_value(field("properties")?)?
            .parse()
            .map_err(|e: CoreError| serde::Error::custom(e.to_string()))?;
        let objective: ObjectiveKey = String::from_value(field("objective")?)?
            .parse()
            .map_err(|e: CoreError| serde::Error::custom(e.to_string()))?;
        Ok(SpecKey {
            n,
            alpha,
            properties,
            objective,
        })
    }
}

// ---------------------------------------------------------------------------
// MechanismSpec
// ---------------------------------------------------------------------------

/// A validated specification of one mechanism design — the single entry point
/// of the design path.
///
/// Build with [`MechanismSpec::new`] and the chainable setters, validate with
/// [`MechanismSpec::build`], and run with [`MechanismSpec::design`]:
///
/// ```
/// use cpm_core::prelude::*;
///
/// let spec = MechanismSpec::new(6, Alpha::new(0.9).unwrap())
///     .properties("WH+CM".parse().unwrap())
///     .build()
///     .unwrap();
/// let designed = spec.design().unwrap();
/// assert_eq!(designed.key(), spec.key());
/// ```
#[derive(Debug, Clone)]
pub struct MechanismSpec {
    n: usize,
    alpha: Alpha,
    properties: PropertySet,
    objective: ObjectiveKey,
    tolerance: f64,
    solver: Option<SolveOptions>,
    /// Transient warm-start hint: an α-neighbour's optimal LP basis (see
    /// [`DesignedMechanism::optimal_basis`]).  A *hint*, not part of what the
    /// spec denotes — excluded from equality and from the serde form, and
    /// stripped from the spec stored inside the designed artifact.
    warm_basis: Option<Vec<usize>>,
}

impl PartialEq for MechanismSpec {
    /// Equality over what the spec denotes; the warm-start *hint* can only
    /// change how fast the design is computed, never which design, so two
    /// specs differing only in the hint are equal.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.alpha == other.alpha
            && self.properties == other.properties
            && self.objective == other.objective
            && self.tolerance == other.tolerance
            && self.solver == other.solver
    }
}

impl MechanismSpec {
    /// Start a spec for group size `n` at privacy level `alpha`, with no
    /// requested properties, the paper's `L0` objective, the default property
    /// tolerance, and per-problem recommended solver options.
    pub fn new(n: usize, alpha: Alpha) -> Self {
        MechanismSpec {
            n,
            alpha,
            properties: PropertySet::empty(),
            objective: ObjectiveKey::L0,
            tolerance: DEFAULT_PROPERTY_TOLERANCE,
            solver: None,
            warm_basis: None,
        }
    }

    /// Set the requested structural properties.
    #[must_use]
    pub fn properties(mut self, properties: PropertySet) -> Self {
        self.properties = properties;
        self
    }

    /// Add one requested property.
    #[must_use]
    pub fn with_property(mut self, property: crate::properties::Property) -> Self {
        self.properties.insert(property);
        self
    }

    /// Set the design objective (default `L0`).
    #[must_use]
    pub fn objective(mut self, objective: ObjectiveKey) -> Self {
        self.objective = objective;
        self
    }

    /// Set the absolute tolerance used for the achieved-property report.
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Override the simplex options (default: each LP picks its own size-scaled
    /// [`DesignProblem::recommended_options`]).
    #[must_use]
    pub fn solver(mut self, options: SolveOptions) -> Self {
        self.solver = Some(options);
        self
    }

    /// Seed the design's LP solve (when one runs) from an α-neighbour's
    /// [`DesignedMechanism::optimal_basis`].  The hint is transparent: a seed
    /// that does not fit the LP this spec resolves to — or is dual-infeasible
    /// under its coefficients — falls back to the cold primal path inside the
    /// solver, so the designed mechanism is identical either way.  Closed-form
    /// designs (GM/EM/UM) ignore it.
    #[must_use]
    pub fn warm_start(mut self, basis: Option<Vec<usize>>) -> Self {
        self.warm_basis = basis;
        self
    }

    /// Validate the spec, returning it unchanged on success.
    ///
    /// Checks: `n ≥ 1`; the tolerance is finite and positive; an `L0,d`
    /// objective has `d ≤ n` (beyond that every output is free and the LP is
    /// degenerate).
    pub fn build(self) -> Result<Self, CoreError> {
        self.validate()?;
        Ok(self)
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.n == 0 {
            return Err(CoreError::InvalidGroupSize { value: self.n });
        }
        if !self.tolerance.is_finite() || self.tolerance <= 0.0 {
            return Err(CoreError::InvalidSpec {
                reason: format!(
                    "property tolerance must be a positive finite number, got {}",
                    self.tolerance
                ),
            });
        }
        if let ObjectiveKey::L0Beyond(d) = self.objective {
            if d > self.n {
                return Err(CoreError::InvalidDistanceThreshold { d, n: self.n });
            }
        }
        Ok(())
    }

    /// Group size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Privacy parameter α.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// The requested structural properties (pre-closure).
    pub fn requested(&self) -> PropertySet {
        self.properties
    }

    /// The design objective.
    pub fn objective_key(&self) -> ObjectiveKey {
        self.objective
    }

    /// The achieved-property check tolerance.
    pub fn property_tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The solver override, if any.
    pub fn solver_options(&self) -> Option<&SolveOptions> {
        self.solver.as_ref()
    }

    /// The warm-start hint, if any (see [`MechanismSpec::warm_start`]).
    pub fn warm_start_hint(&self) -> Option<&[usize]> {
        self.warm_basis.as_deref()
    }

    /// The bit-exact cache key of this spec (tolerance and solver overrides are
    /// excluded — see [`SpecKey`]).
    pub fn key(&self) -> SpecKey {
        SpecKey::with_objective(self.n, self.alpha, self.properties, self.objective)
    }

    /// Run the design: `L0` requests go through the Figure-5 flowchart (which
    /// short-circuits to closed forms whenever it can), other objectives solve
    /// the property-constrained LP directly.  Validates the spec first, so a
    /// spec that skipped [`MechanismSpec::build`] still cannot design nonsense.
    pub fn design(&self) -> Result<DesignedMechanism, CoreError> {
        self.validate()?;
        let start = Instant::now();
        let (choice, mechanism, solver_stats, basis) = match self.objective {
            ObjectiveKey::L0 => {
                let choice = selection::select_mechanism(self.properties, self.n, self.alpha);
                let (mechanism, stats, basis) = selection::realize_choice(
                    choice,
                    self.n,
                    self.alpha,
                    self.solver.as_ref(),
                    self.warm_basis.as_deref(),
                )?;
                (Some(choice), mechanism, stats, basis)
            }
            objective => {
                let problem = DesignProblem::constrained(
                    self.n,
                    self.alpha,
                    objective.to_objective(),
                    self.properties.closure(),
                )
                .with_warm_basis(self.warm_basis.clone());
                let solution = match &self.solver {
                    Some(options) => problem.solve_with(options)?,
                    None => problem.solve()?,
                };
                (
                    None,
                    solution.mechanism,
                    Some(solution.solver_stats),
                    solution.optimal_basis,
                )
            }
        };
        let design_nanos = start.elapsed().as_nanos() as u64;
        cpm_obs::histogram!("cpm_design_nanos").record(design_nanos);
        if solver_stats.is_some() {
            cpm_obs::counter!("cpm_design_solves_total{kind=\"lp\"}").inc();
        } else {
            cpm_obs::counter!("cpm_design_solves_total{kind=\"flowchart\"}").inc();
        }
        let report = PropertyReport::evaluate(&mechanism, self.tolerance);
        let score = rescaled_l0(&mechanism);
        // The stored spec drops the transient warm-start hint — including one
        // smuggled in through the solver override — so the artifact records
        // what was designed, not how its solve was seeded (and the serde form
        // must not balloon with stale bases).
        let mut stored = self.clone().warm_start(None);
        if let Some(solver) = &mut stored.solver {
            solver.warm_basis = None;
        }
        Ok(DesignedMechanism {
            spec: stored,
            choice,
            mechanism,
            solver_stats,
            report,
            score,
            design_nanos,
            basis,
            cdf_sampler: OnceLock::new(),
            alias_sampler: OnceLock::new(),
            inverse: OnceLock::new(),
        })
    }
}

impl fmt::Display for MechanismSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

impl Serialize for MechanismSpec {
    /// Canonical form: the [`SpecKey`] fields plus `tolerance` and `solver`.
    fn to_value(&self) -> serde::Value {
        let serde::Value::Object(mut pairs) = self.key().to_value() else {
            unreachable!("SpecKey serialises to an object");
        };
        pairs.push(("tolerance".to_string(), self.tolerance.to_value()));
        pairs.push(("solver".to_string(), self.solver.to_value()));
        serde::Value::Object(pairs)
    }
}

impl Deserialize for MechanismSpec {
    /// Validates on the way in: a malformed spec is a deserialisation error,
    /// never a live `MechanismSpec`.
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let key = SpecKey::from_value(value)?;
        let pairs = serde::as_object(value, "MechanismSpec")?;
        let tolerance = match serde::object_get(pairs, "tolerance") {
            Some(raw) => f64::from_value(raw)?,
            None => DEFAULT_PROPERTY_TOLERANCE,
        };
        let solver = match serde::object_get(pairs, "solver") {
            Some(raw) => Option::<SolveOptions>::from_value(raw)?,
            None => None,
        };
        let mut spec = key.spec().tolerance(tolerance);
        if let Some(options) = solver {
            spec = spec.solver(options);
        }
        spec.build()
            .map_err(|e| serde::Error::custom(e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// DesignedMechanism
// ---------------------------------------------------------------------------

/// A finished design: the matrix plus everything worth knowing about how it
/// came to be, with lazily-built samplers for the serving hot path.
///
/// Serde round trips are exact — `serialize → deserialize` reproduces the
/// matrix bit-for-bit and the same [`SpecKey`] — which is what makes cache
/// snapshot files a faithful substitute for re-running the LP.
#[derive(Debug)]
pub struct DesignedMechanism {
    spec: MechanismSpec,
    choice: Option<MechanismChoice>,
    mechanism: Mechanism,
    solver_stats: Option<SolveStats>,
    report: PropertyReport,
    score: f64,
    design_nanos: u64,
    /// The optimal standard-form basis of the LP solve, when one ran and the
    /// solver could report it.  Serialised (optional field; pre-basis
    /// snapshots default to `None`) so a restored design can seed the warm
    /// start of its α-neighbours.
    basis: Option<Vec<usize>>,
    cdf_sampler: OnceLock<MechanismSampler>,
    alias_sampler: OnceLock<AliasSampler>,
    inverse: OnceLock<Result<Vec<f64>, CoreError>>,
}

impl Clone for DesignedMechanism {
    /// Clones the design data; sampler caches start empty in the clone.
    fn clone(&self) -> Self {
        DesignedMechanism {
            spec: self.spec.clone(),
            choice: self.choice,
            mechanism: self.mechanism.clone(),
            solver_stats: self.solver_stats,
            report: self.report.clone(),
            score: self.score,
            design_nanos: self.design_nanos,
            basis: self.basis.clone(),
            cdf_sampler: OnceLock::new(),
            alias_sampler: OnceLock::new(),
            inverse: OnceLock::new(),
        }
    }
}

impl PartialEq for DesignedMechanism {
    /// Equality over the design data (the lazily-built samplers are caches, not
    /// state).
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.choice == other.choice
            && self.mechanism == other.mechanism
            && self.solver_stats == other.solver_stats
            && self.report == other.report
            && self.score == other.score
            && self.design_nanos == other.design_nanos
            && self.basis == other.basis
    }
}

impl DesignedMechanism {
    /// The spec this design answers.
    pub fn spec(&self) -> &MechanismSpec {
        &self.spec
    }

    /// The bit-exact cache key of the spec.
    pub fn key(&self) -> SpecKey {
        self.spec.key()
    }

    /// Which Figure-5 mechanism the design resolved to (`None` for non-`L0`
    /// objectives, which bypass the flowchart and solve the LP directly).
    pub fn choice(&self) -> Option<MechanismChoice> {
        self.choice
    }

    /// The designed column-stochastic matrix.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mechanism
    }

    /// Consume the artifact, keeping only the matrix.
    pub fn into_mechanism(self) -> Mechanism {
        self.mechanism
    }

    /// Simplex statistics when the design required an LP solve; `None` for the
    /// closed-form constructions (GM, EM, UM).
    pub fn solver_stats(&self) -> Option<&SolveStats> {
        self.solver_stats.as_ref()
    }

    /// Whether the design ran the simplex (as opposed to a closed form).
    pub fn used_lp(&self) -> bool {
        self.solver_stats.is_some()
    }

    /// The optimal standard-form basis of the LP solve, when one ran and
    /// could report it — the seed for [`MechanismSpec::warm_start`] on an
    /// α-neighbour of this design's family.  `None` for closed-form designs
    /// and for artifacts restored from pre-basis snapshots.
    pub fn optimal_basis(&self) -> Option<&[usize]> {
        self.basis.as_deref()
    }

    /// The achieved properties of the designed matrix, evaluated at the spec's
    /// tolerance over all seven properties.
    pub fn report(&self) -> &PropertyReport {
        &self.report
    }

    /// Whether every *requested* property holds according to the report.
    pub fn requested_satisfied(&self) -> bool {
        self.spec
            .requested()
            .iter()
            .all(|property| self.report.holds(property))
    }

    /// The rescaled `L0` score of Eq. (1) (1.0 = the trivial uniform mechanism).
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Wall-clock time the design took (closed form or LP).
    pub fn design_time(&self) -> Duration {
        Duration::from_nanos(self.design_nanos)
    }

    /// The `O(log n)`-per-draw CDF sampler, built on first use.
    pub fn sampler(&self) -> &MechanismSampler {
        self.cdf_sampler
            .get_or_init(|| MechanismSampler::new(&self.mechanism))
    }

    /// The `O(1)`-per-draw Walker/Vose alias sampler, built on first use — the
    /// serving hot path.
    pub fn alias_sampler(&self) -> &AliasSampler {
        self.alias_sampler
            .get_or_init(|| AliasSampler::new(&self.mechanism))
    }

    /// The cached row-major inverse `M⁻¹` of the designed matrix — the
    /// estimator's linear map from observed output histograms to unbiased
    /// input-frequency estimates.  Factored once on first use (like the
    /// samplers); the `Err` outcome is cached too, so singular designs (the
    /// Uniform mechanism) fail in O(1) on every subsequent call.
    pub fn inverse(&self) -> Result<&[f64], CoreError> {
        match self.inverse.get_or_init(|| self.mechanism.inverse()) {
            Ok(inv) => Ok(inv.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }
}

impl fmt::Display for DesignedMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} (L0 = {:.4})",
            self.key(),
            self.choice.map(MechanismChoice::short_name).unwrap_or("LP"),
            self.score
        )
    }
}

impl Serialize for DesignedMechanism {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("spec".to_string(), self.spec.to_value()),
            ("choice".to_string(), self.choice.to_value()),
            ("mechanism".to_string(), self.mechanism.to_value()),
            ("solver_stats".to_string(), self.solver_stats.to_value()),
            ("report".to_string(), self.report.to_value()),
            ("score".to_string(), self.score.to_value()),
            ("design_nanos".to_string(), self.design_nanos.to_value()),
            ("basis".to_string(), self.basis.to_value()),
        ])
    }
}

impl Deserialize for DesignedMechanism {
    /// Rebuilds the artifact, re-validating the matrix (dimensions and column
    /// stochasticity) so a corrupt snapshot is rejected instead of served.
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = serde::as_object(value, "DesignedMechanism")?;
        let field = |name: &str| {
            serde::object_get(pairs, name)
                .ok_or_else(|| serde::Error::missing_field("DesignedMechanism", name))
        };
        let spec = MechanismSpec::from_value(field("spec")?)?;
        let choice = Option::<MechanismChoice>::from_value(field("choice")?)?;
        let mechanism = Mechanism::from_value(field("mechanism")?)?;
        if mechanism.group_size() != spec.n() {
            return Err(serde::Error::custom(format!(
                "designed matrix is for n = {} but the spec says n = {}",
                mechanism.group_size(),
                spec.n()
            )));
        }
        mechanism
            .validate(1e-7)
            .map_err(|e| serde::Error::custom(format!("invalid designed matrix: {e}")))?;
        let solver_stats = Option::<SolveStats>::from_value(field("solver_stats")?)?;
        let report = PropertyReport::from_value(field("report")?)?;
        let score = f64::from_value(field("score")?)?;
        let design_nanos = u64::from_value(field("design_nanos")?)?;
        // Optional for compatibility: snapshots written before warm starts
        // existed have no basis field and load with `None`.
        let basis = match serde::object_get(pairs, "basis") {
            Some(raw) => Option::<Vec<usize>>::from_value(raw)?,
            None => None,
        };
        if let Some(basis) = &basis {
            let dim = spec.n() + 1;
            // A basis never has more entries than the LP has rows; the
            // constrained formulations top out well under 16·dim² rows.  The
            // check is deliberately loose — its job is to reject corrupt
            // snapshots, not to re-derive the exact LP shape here — and the
            // bound saturates so an absurd `n` cannot overflow the multiply
            // (a corrupt snapshot must degrade to an error, never a panic).
            if basis.len() > 16usize.saturating_mul(dim).saturating_mul(dim) {
                return Err(serde::Error::custom(format!(
                    "designed-mechanism basis has {} entries, far beyond any n = {} LP",
                    basis.len(),
                    spec.n()
                )));
            }
        }
        Ok(DesignedMechanism {
            spec,
            choice,
            mechanism,
            solver_stats,
            report,
            score,
            design_nanos,
            basis,
            cdf_sampler: OnceLock::new(),
            alias_sampler: OnceLock::new(),
            inverse: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;
    use crate::properties::Property;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn the_acceptance_chain_designs_a_fair_mechanism() {
        let designed = MechanismSpec::new(4, a(0.9))
            .properties(PropertySet::empty().with(Property::Fairness))
            .objective(ObjectiveKey::L0)
            .build()
            .unwrap()
            .design()
            .unwrap();
        assert_eq!(designed.choice(), Some(MechanismChoice::ExplicitFair));
        assert!(!designed.used_lp(), "EM is closed form");
        assert!(designed.requested_satisfied());
        assert!((designed.score() - closed_form::em_l0(4, a(0.9))).abs() < 1e-9);
        assert!(designed.mechanism().satisfies_dp(a(0.9), 1e-9));
    }

    #[test]
    fn build_validates_the_spec() {
        assert!(matches!(
            MechanismSpec::new(0, a(0.9)).build(),
            Err(CoreError::InvalidGroupSize { value: 0 })
        ));
        assert!(matches!(
            MechanismSpec::new(4, a(0.9)).tolerance(0.0).build(),
            Err(CoreError::InvalidSpec { .. })
        ));
        assert!(matches!(
            MechanismSpec::new(4, a(0.9)).tolerance(f64::NAN).build(),
            Err(CoreError::InvalidSpec { .. })
        ));
        assert!(matches!(
            MechanismSpec::new(4, a(0.9))
                .objective(ObjectiveKey::L0Beyond(5))
                .build(),
            Err(CoreError::InvalidDistanceThreshold { d: 5, n: 4 })
        ));
        // design() validates too, even without build().
        assert!(MechanismSpec::new(0, a(0.9)).design().is_err());
    }

    #[test]
    fn lp_designs_carry_their_provenance_and_stats() {
        let designed = MechanismSpec::new(6, a(0.9))
            .with_property(Property::ColumnMonotonicity)
            .build()
            .unwrap()
            .design()
            .unwrap();
        assert_eq!(
            designed.choice(),
            Some(MechanismChoice::WeakHonestColumnMonotoneLp)
        );
        let stats = designed.solver_stats().expect("WM runs the simplex");
        assert!(stats.phase1_iterations + stats.phase2_iterations > 0);
        assert!(designed.requested_satisfied());
        assert!(designed.report().holds(Property::WeakHonesty));
    }

    #[test]
    fn non_l0_objectives_bypass_the_flowchart() {
        let designed = MechanismSpec::new(4, a(0.9))
            .objective(ObjectiveKey::L1)
            .build()
            .unwrap()
            .design()
            .unwrap();
        assert_eq!(designed.choice(), None);
        assert!(designed.used_lp());
        assert!(designed.mechanism().satisfies_dp(a(0.9), 1e-6));
    }

    #[test]
    fn samplers_are_lazy_and_consistent_with_the_matrix() {
        let designed = MechanismSpec::new(5, a(0.7))
            .build()
            .unwrap()
            .design()
            .unwrap();
        let alias = designed.alias_sampler();
        for j in 0..designed.mechanism().dim() {
            let pmf = alias.implied_pmf(j);
            for (i, &mass) in pmf.iter().enumerate() {
                assert!((mass - designed.mechanism().prob(i, j)).abs() < 1e-12);
            }
        }
        // Both samplers resolve the same uniform identically where regions align.
        let cdf = designed.sampler();
        assert_eq!(cdf.dim(), designed.mechanism().dim());
    }

    #[test]
    fn serde_round_trip_is_exact() {
        for (n, alpha, properties) in [
            (4usize, 0.9, PropertySet::empty()),
            (5, 0.62, PropertySet::empty().with(Property::Fairness)),
            (
                6,
                0.9,
                PropertySet::empty().with(Property::ColumnMonotonicity),
            ),
        ] {
            let designed = MechanismSpec::new(n, a(alpha))
                .properties(properties)
                .build()
                .unwrap()
                .design()
                .unwrap();
            let text = serde_json::to_string(&designed).unwrap();
            let back: DesignedMechanism = serde_json::from_str(&text).unwrap();
            assert_eq!(back, designed, "n={n} α={alpha}");
            assert_eq!(back.key(), designed.key());
            // Matrix is bit-for-bit identical.
            assert_eq!(back.mechanism().entries(), designed.mechanism().entries());
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected_on_deserialisation() {
        let designed = MechanismSpec::new(3, a(0.8))
            .build()
            .unwrap()
            .design()
            .unwrap();
        let serde::Value::Object(pairs) = designed.to_value() else {
            panic!("expected object");
        };
        // Corrupt the matrix entries: zero out the first column.
        let mut corrupted = pairs.clone();
        for (name, value) in corrupted.iter_mut() {
            if name == "mechanism" {
                let serde::Value::Object(matrix_fields) = value else {
                    panic!("matrix must be an object")
                };
                for (field, entries) in matrix_fields.iter_mut() {
                    if field == "entries" {
                        *entries = vec![0.0f64; 16].to_value();
                    }
                }
            }
        }
        let result = DesignedMechanism::from_value(&serde::Value::Object(corrupted));
        assert!(result.is_err(), "an all-zero matrix must be rejected");

        // A matrix whose size contradicts the spec is rejected too.
        let other = MechanismSpec::new(4, a(0.8))
            .build()
            .unwrap()
            .design()
            .unwrap();
        let mut mismatched = pairs;
        for (name, value) in mismatched.iter_mut() {
            if name == "mechanism" {
                *value = other.mechanism().to_value();
            }
        }
        assert!(DesignedMechanism::from_value(&serde::Value::Object(mismatched)).is_err());
    }

    #[test]
    fn spec_keys_distinguish_every_component_and_collide_on_equal_floats() {
        use std::collections::HashSet;
        let alpha = a(0.9);
        let mut set = HashSet::new();
        set.insert(SpecKey::new(8, alpha, PropertySet::empty()));
        // Same α parsed a second way collides (bit equality).
        let reparsed = a("0.9".parse::<f64>().unwrap());
        assert!(!set.insert(SpecKey::new(8, reparsed, PropertySet::empty())));
        // Changing any component yields a fresh key.
        assert!(set.insert(SpecKey::new(9, alpha, PropertySet::empty())));
        assert!(set.insert(SpecKey::new(8, a(0.91), PropertySet::empty())));
        assert!(set.insert(SpecKey::new(
            8,
            alpha,
            PropertySet::empty().with(Property::WeakHonesty)
        )));
        assert!(set.insert(SpecKey::with_objective(
            8,
            alpha,
            PropertySet::empty(),
            ObjectiveKey::L1
        )));
    }

    #[test]
    fn spec_key_and_spec_serde_round_trip() {
        let key = SpecKey::with_objective(
            12,
            a(10.0 / 11.0),
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::Symmetry),
            ObjectiveKey::L0Beyond(2),
        );
        let text = serde_json::to_string(&key).unwrap();
        let back: SpecKey = serde_json::from_str(&text).unwrap();
        assert_eq!(back, key);

        let spec = key.spec().tolerance(1e-8).build().unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let back: MechanismSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.key(), key);

        // An invalid spec is a deserialisation error, not a live value.
        let bad = r#"{"n":0,"alpha":0.9,"properties":"","objective":"L0"}"#;
        assert!(serde_json::from_str::<MechanismSpec>(bad).is_err());
        let bad_alpha = r#"{"n":4,"alpha":1.5,"properties":"","objective":"L0"}"#;
        assert!(serde_json::from_str::<SpecKey>(bad_alpha).is_err());
    }
}

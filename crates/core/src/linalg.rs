//! Small dense linear algebra: LU factorisation with partial pivoting.
//!
//! The frequency estimator inverts the designed `(n+1) × (n+1)` mechanism
//! matrix to turn an observed output histogram into unbiased input-frequency
//! estimates (`t̂ = M⁻¹·o`).  Those matrices are small and dense — nothing like
//! the sparse constraint systems `cpm-simplex` factorises — so this module
//! carries its own textbook Doolittle LU with partial pivoting, sized for
//! `dim ≲ 10³`.
//!
//! Singularity is a *first-class outcome*, not a panic: the Uniform mechanism
//! (every column identical) is a legitimate design whose matrix carries no
//! invertible information, and factoring it reports
//! [`CoreError::SingularMatrix`].

use crate::error::CoreError;

/// Relative pivot threshold below which elimination declares the matrix
/// singular.  Scaled by the largest absolute entry of the input so the test is
/// invariant to uniform rescaling.
const PIVOT_TOLERANCE: f64 = 1e-12;

/// A dense LU factorisation `P·A = L·U` with partial (row) pivoting.
///
/// The factors are stored packed in a single row-major `dim × dim` buffer
/// (unit-diagonal `L` below, `U` on and above), plus the row-pivot
/// permutation.  Factor once, then [`solve`](Self::solve) any number of
/// right-hand sides or materialise the full [`inverse`](Self::inverse).
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    dim: usize,
    /// Packed L (strictly lower, unit diagonal implicit) and U (upper).
    lu: Vec<f64>,
    /// `pivots[k]` = source row swapped into position `k` at step `k`.
    pivots: Vec<usize>,
}

impl LuFactors {
    /// Factor a row-major `dim × dim` matrix.
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `entries` is not
    /// `dim × dim` and [`CoreError::SingularMatrix`] if elimination finds no
    /// usable pivot (all candidates below the relative tolerance).
    pub fn factor(dim: usize, entries: &[f64]) -> Result<Self, CoreError> {
        if entries.len() != dim * dim {
            return Err(CoreError::DimensionMismatch {
                entries: entries.len(),
                expected: dim * dim,
            });
        }
        let scale = entries.iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()));
        if dim == 0 || scale == 0.0 {
            return Err(CoreError::SingularMatrix { column: 0 });
        }
        let threshold = scale * PIVOT_TOLERANCE;
        let mut lu = entries.to_vec();
        let mut pivots = vec![0usize; dim];
        for k in 0..dim {
            // Partial pivoting: bring the largest remaining entry of column k
            // onto the diagonal.
            let mut best = k;
            let mut best_abs = lu[k * dim + k].abs();
            for row in (k + 1)..dim {
                let abs = lu[row * dim + k].abs();
                if abs > best_abs {
                    best = row;
                    best_abs = abs;
                }
            }
            if best_abs <= threshold {
                return Err(CoreError::SingularMatrix { column: k });
            }
            pivots[k] = best;
            if best != k {
                for col in 0..dim {
                    lu.swap(k * dim + col, best * dim + col);
                }
            }
            let pivot = lu[k * dim + k];
            for row in (k + 1)..dim {
                let factor = lu[row * dim + k] / pivot;
                lu[row * dim + k] = factor;
                for col in (k + 1)..dim {
                    lu[row * dim + col] -= factor * lu[k * dim + col];
                }
            }
        }
        Ok(LuFactors { dim, lu, pivots })
    }

    /// The factored dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Solve `A·x = rhs` in place (`rhs` becomes `x`).
    ///
    /// # Panics
    /// If `rhs.len() != dim`.
    pub fn solve_in_place(&self, rhs: &mut [f64]) {
        let dim = self.dim;
        assert_eq!(rhs.len(), dim, "right-hand side must have length dim");
        // Apply the row permutation, then forward- and back-substitute.
        for k in 0..dim {
            rhs.swap(k, self.pivots[k]);
        }
        for row in 1..dim {
            let mut acc = rhs[row];
            let l_row = &self.lu[row * dim..row * dim + row];
            for (l, &x) in l_row.iter().zip(rhs.iter()) {
                acc -= l * x;
            }
            rhs[row] = acc;
        }
        for row in (0..dim).rev() {
            let mut acc = rhs[row];
            let u_row = &self.lu[row * dim + row + 1..(row + 1) * dim];
            for (u, &x) in u_row.iter().zip(rhs[row + 1..].iter()) {
                acc -= u * x;
            }
            rhs[row] = acc / self.lu[row * dim + row];
        }
    }

    /// Solve `A·x = rhs`, returning a fresh solution vector.
    pub fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        let mut x = rhs.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Materialise the dense row-major inverse `A⁻¹` (one solve per unit
    /// vector).
    pub fn inverse(&self) -> Vec<f64> {
        let dim = self.dim;
        let mut inv = vec![0.0; dim * dim];
        let mut column = vec![0.0; dim];
        for j in 0..dim {
            column.iter_mut().for_each(|v| *v = 0.0);
            column[j] = 1.0;
            self.solve_in_place(&mut column);
            for i in 0..dim {
                inv[i * dim + j] = column[i];
            }
        }
        inv
    }
}

/// Factor and invert a row-major `dim × dim` matrix in one call.
pub fn invert(dim: usize, entries: &[f64]) -> Result<Vec<f64>, CoreError> {
    Ok(LuFactors::factor(dim, entries)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(dim: usize, m: &[f64], v: &[f64]) -> Vec<f64> {
        (0..dim)
            .map(|i| (0..dim).map(|j| m[i * dim + j] * v[j]).sum())
            .collect()
    }

    #[test]
    fn solves_a_known_system() {
        // A = [[2, 1], [1, 3]], b = [5, 10] → x = [1, 3].
        let lu = LuFactors::factor(2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 3.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn pivoting_handles_a_zero_leading_entry() {
        // Without row exchanges the first pivot is exactly zero.
        let lu = LuFactors::factor(2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = lu.solve(&[7.0, -2.0]);
        assert!((x[0] + 2.0).abs() < 1e-12 && (x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let dim = 5;
        // A diagonally-dominant (hence invertible) test matrix.
        let entries: Vec<f64> = (0..dim * dim)
            .map(|k| {
                let (i, j) = (k / dim, k % dim);
                if i == j {
                    3.0 + i as f64
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                }
            })
            .collect();
        let inv = invert(dim, &entries).unwrap();
        for j in 0..dim {
            let e_j: Vec<f64> = (0..dim).map(|i| if i == j { 1.0 } else { 0.0 }).collect();
            let col: Vec<f64> = (0..dim).map(|i| inv[i * dim + j]).collect();
            let back = mat_vec(dim, &entries, &col);
            for (i, v) in back.iter().enumerate() {
                assert!((v - e_j[i]).abs() < 1e-9, "A·A⁻¹ column {j} row {i}: {v}");
            }
        }
    }

    #[test]
    fn singular_matrices_are_reported_not_panicked() {
        // Two identical columns.
        let err = LuFactors::factor(2, &[1.0, 1.0, 2.0, 2.0]).unwrap_err();
        assert!(matches!(err, CoreError::SingularMatrix { .. }), "{err}");
        // The all-zero matrix.
        let err = LuFactors::factor(3, &[0.0; 9]).unwrap_err();
        assert!(matches!(err, CoreError::SingularMatrix { .. }));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let err = LuFactors::factor(3, &[1.0; 8]).unwrap_err();
        assert_eq!(
            err,
            CoreError::DimensionMismatch {
                entries: 8,
                expected: 9
            }
        );
    }
}

//! The privacy parameter α and its relationship to ε.
//!
//! The paper parameterises differential privacy by `α ∈ (0, 1]` where a mechanism is
//! α-DP if `α ≤ Pr[i|j] / Pr[i|j+1] ≤ 1/α` for every output `i` and neighbouring
//! inputs `j, j+1` (Definition 2).  This is the usual ε-DP with `α = exp(−ε)`:
//! α close to 1 is *strong* privacy (tight ratio), α close to 0 is weak privacy.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// The multiplicative privacy parameter `α ∈ (0, 1]` of Definition 2.
///
/// Construct with [`Alpha::new`] (validating) or [`Alpha::from_epsilon`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Alpha(f64);

impl Alpha {
    /// Create a privacy parameter, validating `0 < α <= 1`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Alpha(value))
        } else {
            Err(CoreError::InvalidAlpha { value })
        }
    }

    /// Convert from the additive privacy budget: `α = exp(−ε)`, requiring `ε >= 0`.
    pub fn from_epsilon(epsilon: f64) -> Result<Self, CoreError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(CoreError::InvalidAlpha {
                value: (-epsilon).exp(),
            });
        }
        Alpha::new((-epsilon).exp())
    }

    /// The raw value of α.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The equivalent additive privacy budget `ε = −ln α`.
    #[inline]
    pub fn epsilon(self) -> f64 {
        -self.0.ln()
    }

    /// The group-size threshold `2α / (1 − α)` of Lemma 2: the Geometric Mechanism
    /// satisfies weak honesty iff `n` is at least this value.  Returns `+inf` for
    /// `α = 1`.
    pub fn weak_honesty_threshold(self) -> f64 {
        if self.0 >= 1.0 {
            f64::INFINITY
        } else {
            2.0 * self.0 / (1.0 - self.0)
        }
    }

    /// Lemma 3: the Geometric Mechanism is column monotone iff `α <= 1/2`.
    pub fn geometric_is_column_monotone(self) -> bool {
        self.0 <= 0.5
    }

    /// The values of α used throughout the paper's experiments:
    /// `{1/2, 2/3, 0.76, 0.9, 10/11, 0.91, 99/100}` (Sections IV–V).
    pub fn paper_values() -> Vec<Alpha> {
        [0.5, 2.0 / 3.0, 0.76, 0.9, 10.0 / 11.0, 0.91, 0.99]
            .into_iter()
            .map(|a| Alpha::new(a).expect("paper alpha values are valid"))
            .collect()
    }
}

impl std::fmt::Display for Alpha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Alpha {
    type Error = CoreError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Alpha::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_values() {
        for alpha in Alpha::paper_values() {
            assert!(alpha.value() > 0.0 && alpha.value() <= 1.0);
        }
    }

    #[test]
    fn rejects_out_of_range_values() {
        assert!(Alpha::new(0.0).is_err());
        assert!(Alpha::new(-0.1).is_err());
        assert!(Alpha::new(1.1).is_err());
        assert!(Alpha::new(f64::NAN).is_err());
        assert!(Alpha::new(1.0).is_ok());
        assert!(Alpha::new(1e-12).is_ok());
    }

    #[test]
    fn epsilon_round_trip() {
        let alpha = Alpha::new(0.62).unwrap();
        let eps = alpha.epsilon();
        let back = Alpha::from_epsilon(eps).unwrap();
        assert!((alpha.value() - back.value()).abs() < 1e-12);
        // alpha = exp(-eps) ≈ 1 - eps for small eps.
        let strong = Alpha::from_epsilon(0.01).unwrap();
        assert!((strong.value() - 0.99).abs() < 1e-3);
    }

    #[test]
    fn from_epsilon_rejects_negative_budgets() {
        assert!(Alpha::from_epsilon(-1.0).is_err());
        assert!(Alpha::from_epsilon(f64::INFINITY).is_err());
        assert_eq!(Alpha::from_epsilon(0.0).unwrap().value(), 1.0);
    }

    #[test]
    fn weak_honesty_threshold_matches_lemma_2() {
        // alpha = 0.76 -> threshold = 2*0.76/0.24 = 6.333... (used in Fig. 8a).
        let alpha = Alpha::new(0.76).unwrap();
        assert!((alpha.weak_honesty_threshold() - 6.333333333333333).abs() < 1e-9);
        // alpha = 2/3 -> threshold 4 (Fig. 9a); alpha = 10/11 -> 20 (Fig. 9b).
        assert!((Alpha::new(2.0 / 3.0).unwrap().weak_honesty_threshold() - 4.0).abs() < 1e-9);
        assert!((Alpha::new(10.0 / 11.0).unwrap().weak_honesty_threshold() - 20.0).abs() < 1e-9);
        assert!(Alpha::new(1.0)
            .unwrap()
            .weak_honesty_threshold()
            .is_infinite());
    }

    #[test]
    fn column_monotonicity_threshold_matches_lemma_3() {
        assert!(Alpha::new(0.5).unwrap().geometric_is_column_monotone());
        assert!(Alpha::new(0.3).unwrap().geometric_is_column_monotone());
        assert!(!Alpha::new(0.51).unwrap().geometric_is_column_monotone());
    }

    #[test]
    fn try_from_and_display() {
        let alpha: Alpha = 0.9f64.try_into().unwrap();
        assert_eq!(alpha.to_string(), "0.9");
        assert!(Alpha::try_from(2.0).is_err());
    }
}

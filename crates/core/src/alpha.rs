//! The privacy parameter α and its relationship to ε.
//!
//! The paper parameterises differential privacy by `α ∈ (0, 1]` where a mechanism is
//! α-DP if `α ≤ Pr[i|j] / Pr[i|j+1] ≤ 1/α` for every output `i` and neighbouring
//! inputs `j, j+1` (Definition 2).  This is the usual ε-DP with `α = exp(−ε)`:
//! α close to 1 is *strong* privacy (tight ratio), α close to 0 is weak privacy.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// The multiplicative privacy parameter `α ∈ (0, 1]` of Definition 2.
///
/// Construct with [`Alpha::new`] (validating) or [`Alpha::from_epsilon`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Alpha(f64);

impl Alpha {
    /// Create a privacy parameter, validating `0 < α <= 1`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Alpha(value))
        } else {
            Err(CoreError::InvalidAlpha { value })
        }
    }

    /// Convert from the additive privacy budget: `α = exp(−ε)`, requiring `ε >= 0`.
    pub fn from_epsilon(epsilon: f64) -> Result<Self, CoreError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(CoreError::InvalidAlpha {
                value: (-epsilon).exp(),
            });
        }
        Alpha::new((-epsilon).exp())
    }

    /// The raw value of α.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The IEEE-754 bit pattern of α, suitable as a hash-map key component.
    ///
    /// [`Alpha::new`] guarantees the value is finite and strictly positive, so the
    /// bit pattern is canonical: there is no NaN (whose payload bits would make
    /// equal-comparing values hash differently) and no `-0.0` / `+0.0` split.  Two
    /// α values key the same cache slot iff they are the same `f64`.
    #[inline]
    pub fn key_bits(self) -> u64 {
        self.0.to_bits()
    }

    /// This α as a bit-exact, hashable cache key.
    #[inline]
    pub fn key(self) -> AlphaKey {
        AlphaKey(self.key_bits())
    }

    /// The equivalent additive privacy budget `ε = −ln α`.
    #[inline]
    pub fn epsilon(self) -> f64 {
        -self.0.ln()
    }

    /// The group-size threshold `2α / (1 − α)` of Lemma 2: the Geometric Mechanism
    /// satisfies weak honesty iff `n` is at least this value.  Returns `+inf` for
    /// `α = 1`.
    pub fn weak_honesty_threshold(self) -> f64 {
        if self.0 >= 1.0 {
            f64::INFINITY
        } else {
            2.0 * self.0 / (1.0 - self.0)
        }
    }

    /// Lemma 3: the Geometric Mechanism is column monotone iff `α <= 1/2`.
    pub fn geometric_is_column_monotone(self) -> bool {
        self.0 <= 0.5
    }

    /// The values of α used throughout the paper's experiments:
    /// `{1/2, 2/3, 0.76, 0.9, 10/11, 0.91, 99/100}` (Sections IV–V).
    pub fn paper_values() -> Vec<Alpha> {
        [0.5, 2.0 / 3.0, 0.76, 0.9, 10.0 / 11.0, 0.91, 0.99]
            .into_iter()
            .map(|a| Alpha::new(a).expect("paper alpha values are valid"))
            .collect()
    }
}

impl std::fmt::Display for Alpha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A bit-exact, hashable key for an [`Alpha`].
///
/// `Alpha` itself is only `PartialEq` (it wraps an `f64`), which rules it out as a
/// `HashMap` key.  `AlphaKey` wraps the IEEE-754 bit pattern instead, giving `Eq` and
/// `Hash` without epsilon-comparison bugs: `0.9` written two ways collides, while a
/// value one ulp away keys a different slot — exactly the contract a design cache
/// wants (float α values arriving over the wire are either byte-identical or they
/// denote a different design request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlphaKey(u64);

impl AlphaKey {
    /// The raw bit pattern (identical to [`Alpha::key_bits`]).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Recover the α this key was built from.
    #[inline]
    pub fn alpha(self) -> Alpha {
        Alpha(f64::from_bits(self.0))
    }
}

impl From<Alpha> for AlphaKey {
    fn from(alpha: Alpha) -> Self {
        alpha.key()
    }
}

impl Serialize for AlphaKey {
    /// Serialises as the α value itself.  The vendored JSON layer prints `f64`s
    /// with shortest round-trippable formatting, so the bit pattern survives a
    /// serialise → parse cycle exactly — the same contract the key itself makes.
    fn to_value(&self) -> serde::Value {
        serde::Value::Number(self.alpha().value())
    }
}

impl Deserialize for AlphaKey {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let raw = f64::from_value(value)?;
        Alpha::new(raw)
            .map(Alpha::key)
            .map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl std::fmt::Display for AlphaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.alpha())
    }
}

impl TryFrom<f64> for Alpha {
    type Error = CoreError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Alpha::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_values() {
        for alpha in Alpha::paper_values() {
            assert!(alpha.value() > 0.0 && alpha.value() <= 1.0);
        }
    }

    #[test]
    fn rejects_out_of_range_values() {
        assert!(Alpha::new(0.0).is_err());
        assert!(Alpha::new(-0.1).is_err());
        assert!(Alpha::new(1.1).is_err());
        assert!(Alpha::new(f64::NAN).is_err());
        assert!(Alpha::new(1.0).is_ok());
        assert!(Alpha::new(1e-12).is_ok());
    }

    #[test]
    fn epsilon_round_trip() {
        let alpha = Alpha::new(0.62).unwrap();
        let eps = alpha.epsilon();
        let back = Alpha::from_epsilon(eps).unwrap();
        assert!((alpha.value() - back.value()).abs() < 1e-12);
        // alpha = exp(-eps) ≈ 1 - eps for small eps.
        let strong = Alpha::from_epsilon(0.01).unwrap();
        assert!((strong.value() - 0.99).abs() < 1e-3);
    }

    #[test]
    fn from_epsilon_rejects_negative_budgets() {
        assert!(Alpha::from_epsilon(-1.0).is_err());
        assert!(Alpha::from_epsilon(f64::INFINITY).is_err());
        assert_eq!(Alpha::from_epsilon(0.0).unwrap().value(), 1.0);
    }

    #[test]
    fn weak_honesty_threshold_matches_lemma_2() {
        // alpha = 0.76 -> threshold = 2*0.76/0.24 = 6.333... (used in Fig. 8a).
        let alpha = Alpha::new(0.76).unwrap();
        assert!((alpha.weak_honesty_threshold() - 6.333333333333333).abs() < 1e-9);
        // alpha = 2/3 -> threshold 4 (Fig. 9a); alpha = 10/11 -> 20 (Fig. 9b).
        assert!((Alpha::new(2.0 / 3.0).unwrap().weak_honesty_threshold() - 4.0).abs() < 1e-9);
        assert!((Alpha::new(10.0 / 11.0).unwrap().weak_honesty_threshold() - 20.0).abs() < 1e-9);
        assert!(Alpha::new(1.0)
            .unwrap()
            .weak_honesty_threshold()
            .is_infinite());
    }

    #[test]
    fn column_monotonicity_threshold_matches_lemma_3() {
        assert!(Alpha::new(0.5).unwrap().geometric_is_column_monotone());
        assert!(Alpha::new(0.3).unwrap().geometric_is_column_monotone());
        assert!(!Alpha::new(0.51).unwrap().geometric_is_column_monotone());
    }

    #[test]
    fn key_bits_collide_for_the_same_float_parsed_two_ways() {
        // The same mathematical value reached through different front doors — a
        // literal, a string parse, and `from_epsilon(-ln 0.9)` rounded back — must
        // share one cache slot whenever they round to the same f64.
        let literal = Alpha::new(0.9).unwrap();
        let parsed = Alpha::new("0.9".parse::<f64>().unwrap()).unwrap();
        assert_eq!(literal.key(), parsed.key());
        assert_eq!(literal.key_bits(), parsed.key_bits());

        // 0.9 + 1e-17 is below half an ulp of 0.9 (~5.5e-17), so IEEE-754 rounds the
        // sum back to exactly 0.9: per bit equality the two MUST collide.
        let nudged = Alpha::new(0.9 + 1e-17).unwrap();
        assert_eq!(nudged.value().to_bits(), 0.9f64.to_bits());
        assert_eq!(literal.key(), nudged.key());

        // One whole ulp away is a genuinely different f64 and keys a different slot.
        let next_up = Alpha::new(f64::from_bits(0.9f64.to_bits() + 1)).unwrap();
        assert_ne!(literal.key(), next_up.key());
        assert_ne!(literal.key_bits(), next_up.key_bits());
    }

    #[test]
    fn alpha_key_round_trips_and_is_usable_in_a_hash_map() {
        use std::collections::HashMap;
        let mut cache: HashMap<AlphaKey, &'static str> = HashMap::new();
        for alpha in Alpha::paper_values() {
            cache.insert(alpha.key(), "design");
            assert_eq!(alpha.key().alpha().value(), alpha.value());
            assert_eq!(AlphaKey::from(alpha), alpha.key());
        }
        assert_eq!(cache.len(), Alpha::paper_values().len());
        assert_eq!(cache.get(&Alpha::new(0.9).unwrap().key()), Some(&"design"));
    }

    #[test]
    fn alpha_key_serde_is_bit_exact_and_validating() {
        use serde::{Deserialize, Serialize};
        for alpha in Alpha::paper_values() {
            let key = alpha.key();
            let back = AlphaKey::from_value(&key.to_value()).unwrap();
            assert_eq!(back, key, "bit-exact round trip for α = {alpha}");
        }
        // Out-of-range values are rejected at deserialisation time.
        assert!(AlphaKey::from_value(&serde::Value::Number(1.5)).is_err());
        assert!(AlphaKey::from_value(&serde::Value::Number(0.0)).is_err());
    }

    #[test]
    fn try_from_and_display() {
        let alpha: Alpha = 0.9f64.try_into().unwrap();
        assert_eq!(alpha.to_string(), "0.9");
        assert!(Alpha::try_from(2.0).is_err());
    }
}

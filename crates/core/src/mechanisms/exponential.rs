//! The Exponential Mechanism with the distance quality function (Section II-B, Eq. 2).
//!
//! McSherry–Talwar's generic construction samples output `r` with probability
//! proportional to `exp(ε·Q(d, r) / (2s))`.  With the natural quality function
//! `Q(j, i) = −|i − j|` (sensitivity `s = 1`) and `ε = −ln α`, the weights become
//! `α^{|i−j|/2}`, i.e. a column-normalised geometric with parameter `√α`.  The paper
//! uses this to motivate EM: the factor 2 in the exponent means the Exponential
//! Mechanism effectively halves the privacy budget, so its utility is strictly worse
//! than EM's explicit construction at the same privacy level.

use crate::alpha::Alpha;
use crate::error::CoreError;
use crate::matrix::Mechanism;

/// The Exponential Mechanism instantiated with quality `Q(j, i) = −|i − j|`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentialMechanism {
    n: usize,
    alpha: Alpha,
    matrix: Mechanism,
}

impl ExponentialMechanism {
    /// Construct the Exponential Mechanism for group size `n ≥ 1` at privacy level α.
    pub fn new(n: usize, alpha: Alpha) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidGroupSize { value: n });
        }
        // Weight of output i for input j: alpha^{|i-j|/2}; normalise per column.
        let sqrt_alpha = alpha.value().sqrt();
        let mut columns = Vec::with_capacity(n + 1);
        for j in 0..=n {
            let weights: Vec<f64> = (0..=n)
                .map(|i| sqrt_alpha.powi(i.abs_diff(j) as i32))
                .collect();
            let total: f64 = weights.iter().sum();
            columns.push(weights.into_iter().map(|w| w / total).collect::<Vec<_>>());
        }
        let matrix = Mechanism::from_columns(n, &columns)?;
        Ok(ExponentialMechanism { n, alpha, matrix })
    }

    /// Group size `n`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Privacy parameter α (the overall guarantee; the construction internally uses
    /// `√α` per step, which is where its utility loss comes from).
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::ExplicitFairMechanism;
    use crate::objective::rescaled_l0;
    use crate::properties::Property;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn is_stochastic_and_satisfies_dp() {
        for n in [1usize, 3, 7, 12] {
            for alpha in [0.3, 0.62, 0.9, 1.0] {
                let em = ExponentialMechanism::new(n, a(alpha)).unwrap();
                assert!(
                    em.matrix().is_column_stochastic(1e-9),
                    "n={n} alpha={alpha}"
                );
                // The ratio of adjacent-column entries is at most
                // (1/sqrt(alpha)) * (normaliser ratio <= 1/sqrt(alpha)) = 1/alpha.
                assert!(
                    em.matrix().satisfies_dp(a(alpha), 1e-9),
                    "n={n} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn is_column_honest_and_monotone_but_not_fair() {
        let em = ExponentialMechanism::new(6, a(0.8)).unwrap();
        assert!(Property::ColumnHonesty.holds(em.matrix(), 1e-12));
        assert!(Property::ColumnMonotonicity.holds(em.matrix(), 1e-12));
        assert!(Property::Symmetry.holds(em.matrix(), 1e-12));
        // Column normalisers differ between the centre and the edges, so the diagonal
        // is not constant.
        assert!(!Property::Fairness.holds(em.matrix(), 1e-9));
    }

    #[test]
    fn worse_than_explicit_fair_mechanism_at_the_same_privacy_level() {
        // Section IV-C: the factor 2 in Eq. (2) makes the exponential mechanism
        // equivalent to halving epsilon, so its L0 is strictly worse than EM's.
        for n in [3usize, 7, 12] {
            for alpha in [0.5, 0.8, 0.95] {
                let exp = ExponentialMechanism::new(n, a(alpha)).unwrap();
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                assert!(
                    rescaled_l0(exp.matrix()) > rescaled_l0(em.matrix()) - 1e-12,
                    "n={n} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn rejects_zero_group_size() {
        assert!(ExponentialMechanism::new(0, a(0.5)).is_err());
    }
}

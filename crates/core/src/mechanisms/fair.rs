//! The Explicit Fair Mechanism EM (Section IV-C, Eq. 16, Figure 4).
//!
//! EM is the paper's new construction: a mechanism that is simultaneously fair,
//! weakly honest, row/column honest and monotone, and symmetric, while paying only a
//! `≈ (1 + 1/n)` factor over the Geometric Mechanism's optimal `L0` score
//! (Theorem 4).  The entries are powers of α times a common diagonal value `y`; the
//! exponent grows by 1 per step near the diagonal and by 1 per *two* steps once the
//! distance exceeds `min(j, n−j)`, which is exactly what makes every column contain
//! the same multiset of powers (so a single `y` normalises all columns at once).

use crate::alpha::Alpha;
use crate::closed_form;
use crate::error::CoreError;
use crate::matrix::Mechanism;

/// The Explicit Fair Mechanism for a group of size `n` at privacy level α.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplicitFairMechanism {
    n: usize,
    alpha: Alpha,
    matrix: Mechanism,
}

impl ExplicitFairMechanism {
    /// Construct EM for group size `n ≥ 1` and privacy parameter α.
    pub fn new(n: usize, alpha: Alpha) -> Result<Self, CoreError> {
        let y = closed_form::em_diagonal(n, alpha);
        let matrix = Mechanism::from_fn(n, |i, j| y * alpha.value().powi(Self::exponent(n, i, j)))?;
        Ok(ExplicitFairMechanism { n, alpha, matrix })
    }

    /// The exponent of α in cell `(i, j)` of Eq. (16):
    /// `|i−j|` while `|i−j| < min(j, n−j)`, and `⌈(|i−j| + min(j, n−j)) / 2⌉` beyond.
    pub fn exponent(n: usize, output: usize, input: usize) -> i32 {
        let d = output.abs_diff(input);
        let edge = input.min(n - input);
        if d < edge {
            d as i32
        } else {
            ((d + edge).div_ceil(2)) as i32
        }
    }

    /// The diagonal value `y` of this instance (Eq. 15 / [`closed_form::em_diagonal`]).
    pub fn diagonal_value(&self) -> f64 {
        closed_form::em_diagonal(self.n, self.alpha)
    }

    /// Group size `n`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Privacy parameter α.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }

    /// The closed-form rescaled `L0` score, `(n+1)/n · (1 − y)` (Section IV-C).
    pub fn l0_score(&self) -> f64 {
        closed_form::em_l0(self.n, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::rescaled_l0;
    use crate::properties::{Property, PropertySet};

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn matrix_is_stochastic_and_dp_across_parameters() {
        for n in [1usize, 2, 3, 4, 7, 8, 15, 16, 31] {
            for alpha in [0.1, 0.5, 0.62, 0.9, 0.99, 1.0] {
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                let m = em.matrix();
                assert!(m.is_column_stochastic(1e-9), "n={n} alpha={alpha}");
                assert!(m.satisfies_dp(a(alpha), 1e-9), "n={n} alpha={alpha}");
            }
        }
    }

    #[test]
    fn figure_4_structure_for_n_7() {
        // Spot-check the exponent pattern of Figure 4 (n = 7).
        let n = 7;
        // Row 0: 0 1 2 3 4 4 4 4.
        let expected_row0 = [0, 1, 2, 3, 4, 4, 4, 4];
        for (j, &e) in expected_row0.iter().enumerate() {
            assert_eq!(ExplicitFairMechanism::exponent(n, 0, j), e, "row 0 col {j}");
        }
        // Row 3: 2 2 1 0 1 2 2 2.
        let expected_row3 = [2, 2, 1, 0, 1, 2, 2, 2];
        for (j, &e) in expected_row3.iter().enumerate() {
            assert_eq!(ExplicitFairMechanism::exponent(n, 3, j), e, "row 3 col {j}");
        }
        // Row 7: 4 4 4 4 3 2 1 0.
        let expected_row7 = [4, 4, 4, 4, 3, 2, 1, 0];
        for (j, &e) in expected_row7.iter().enumerate() {
            assert_eq!(ExplicitFairMechanism::exponent(n, 7, j), e, "row 7 col {j}");
        }
    }

    #[test]
    fn satisfies_all_seven_properties() {
        // Theorem 4: EM satisfies every structural property, for every n and alpha.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 12, 16, 25] {
            for alpha in [0.3, 0.5, 2.0 / 3.0, 0.9, 0.91, 0.99] {
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                let violations = PropertySet::all().violations(em.matrix(), 1e-9);
                assert!(
                    violations.is_empty(),
                    "n={n} alpha={alpha}: violations {violations:?}"
                );
            }
        }
    }

    #[test]
    fn diagonal_equals_closed_form_y() {
        for n in [2usize, 5, 8, 13] {
            for alpha in [0.5, 0.9] {
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                let y = em.diagonal_value();
                for i in 0..=n {
                    assert!((em.matrix().prob(i, i) - y).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn l0_matches_closed_form_and_dominates_gm() {
        use crate::mechanisms::geometric::GeometricMechanism;
        for n in [2usize, 4, 7, 12] {
            for alpha in [0.5, 0.67, 0.9] {
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                let measured = rescaled_l0(em.matrix());
                assert!(
                    (measured - em.l0_score()).abs() < 1e-9,
                    "n={n} alpha={alpha}"
                );
                let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
                assert!(
                    em.l0_score() + 1e-12 >= gm.l0_score(),
                    "EM cannot beat the unconstrained optimum (n={n} alpha={alpha})"
                );
            }
        }
    }

    #[test]
    fn n_4_alpha_09_diagonal_mass_matches_section_iv_d() {
        // Section IV-D / Figure 7: for n = 4 and alpha "0.9" (the quoted values 0.238
        // and 0.224 correspond to alpha = 10/11 ≈ 0.909), under a uniform input prior
        // EM reports the true input with probability 0.224 (GM: 0.238).
        let em = ExplicitFairMechanism::new(4, a(10.0 / 11.0)).unwrap();
        let truth_probability = em.matrix().trace() / 5.0;
        assert!(
            (truth_probability - 0.224).abs() < 5e-4,
            "got {truth_probability}"
        );
        let gm = crate::mechanisms::geometric::GeometricMechanism::new(4, a(10.0 / 11.0)).unwrap();
        let gm_truth = gm.matrix().trace() / 5.0;
        assert!((gm_truth - 0.238).abs() < 5e-4, "got {gm_truth}");
        assert!(gm_truth > truth_probability);
    }

    #[test]
    fn n_1_reduces_to_randomized_response() {
        let em = ExplicitFairMechanism::new(1, a(0.5)).unwrap();
        let m = em.matrix();
        assert!((m.prob(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.prob(1, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!(Property::Fairness.holds(m, 1e-12));
    }

    #[test]
    fn em_is_not_fully_determined_by_tight_dp_constraints() {
        // Section IV-C: a fair mechanism cannot have all DP inequalities tight.  In EM
        // at least one adjacent pair in some row has equal entries (ratio 1 != alpha).
        let em = ExplicitFairMechanism::new(7, a(0.62)).unwrap();
        let m = em.matrix();
        let mut found_slack_pair = false;
        for i in 0..=7usize {
            for j in 0..7usize {
                let ratio = m.prob(i, j) / m.prob(i, j + 1);
                if (ratio - 1.0).abs() < 1e-12 {
                    found_slack_pair = true;
                }
            }
        }
        assert!(found_slack_pair);
    }
}

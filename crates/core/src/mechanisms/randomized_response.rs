//! Randomized response mechanisms (Section II-B).
//!
//! * [`BinaryRandomizedResponse`] — the canonical single-bit mechanism: report the
//!   truth with probability `p`, the negation with probability `1 − p`.  It is
//!   α-differentially private for `α = (1−p)/p`, i.e. the honest choice at level α is
//!   `p = 1/(1+α)`.  It coincides with both GM and EM for `n = 1`.
//! * [`NaryRandomizedResponse`] — Geng et al.'s extension to an `(n+1)`-valued
//!   answer: report the truth with probability `p`, otherwise pick one of the other
//!   `n` outputs uniformly.  Taking the largest `p` allowed by α-DP gives
//!   `p = 1/(1 + nα)`.  As the paper notes, this gives low utility for count queries
//!   because it ignores the metric structure of the output space — a useful foil for
//!   GM/EM in the experiments.

use crate::alpha::Alpha;
use crate::closed_form;
use crate::error::CoreError;
use crate::matrix::Mechanism;

/// Single-bit randomized response at privacy level α (`n = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryRandomizedResponse {
    alpha: Alpha,
    matrix: Mechanism,
}

impl BinaryRandomizedResponse {
    /// Construct the binary randomized-response mechanism with the largest truthful
    /// probability allowed at privacy level α.
    pub fn new(alpha: Alpha) -> Result<Self, CoreError> {
        let p = closed_form::randomized_response_truth_probability(alpha);
        let matrix = Mechanism::from_fn(1, |i, j| if i == j { p } else { 1.0 - p })?;
        Ok(BinaryRandomizedResponse { alpha, matrix })
    }

    /// The probability of reporting the true bit.
    pub fn truth_probability(&self) -> f64 {
        closed_form::randomized_response_truth_probability(self.alpha)
    }

    /// Privacy parameter α.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }
}

/// Geng et al.'s n-ary randomized response over outputs `{0, …, n}`.
#[derive(Debug, Clone, PartialEq)]
pub struct NaryRandomizedResponse {
    n: usize,
    alpha: Alpha,
    matrix: Mechanism,
}

impl NaryRandomizedResponse {
    /// Construct the n-ary randomized-response mechanism for group size `n ≥ 1` at
    /// privacy level α.
    pub fn new(n: usize, alpha: Alpha) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidGroupSize { value: n });
        }
        let p = closed_form::nary_randomized_response_truth_probability(n, alpha);
        let off = (1.0 - p) / n as f64;
        let matrix = Mechanism::from_fn(n, |i, j| if i == j { p } else { off })?;
        Ok(NaryRandomizedResponse { n, alpha, matrix })
    }

    /// The probability of reporting the true count.
    pub fn truth_probability(&self) -> f64 {
        closed_form::nary_randomized_response_truth_probability(self.n, self.alpha)
    }

    /// Group size `n`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Privacy parameter α.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{ExplicitFairMechanism, GeometricMechanism};
    use crate::objective::rescaled_l0;
    use crate::properties::PropertySet;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn binary_rr_is_dp_and_fair() {
        for alpha in [0.25, 0.5, 0.9, 1.0] {
            let rr = BinaryRandomizedResponse::new(a(alpha)).unwrap();
            assert!(rr.matrix().satisfies_dp(a(alpha), 1e-12));
            assert!(PropertySet::all().all_hold(rr.matrix(), 1e-12));
            // The DP constraint is tight: ratio of off/diag equals alpha exactly.
            let ratio = rr.matrix().prob(0, 1) / rr.matrix().prob(0, 0);
            assert!((ratio - alpha).abs() < 1e-12);
        }
    }

    #[test]
    fn binary_rr_coincides_with_gm_and_em_for_n_1() {
        // Section IV-A: for n = 1, randomized response is the unique optimal mechanism,
        // so GM, EM, and RR all coincide.
        let alpha = a(0.7);
        let rr = BinaryRandomizedResponse::new(alpha).unwrap();
        let gm = GeometricMechanism::new(1, alpha).unwrap();
        let em = ExplicitFairMechanism::new(1, alpha).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((rr.matrix().prob(i, j) - gm.matrix().prob(i, j)).abs() < 1e-12);
                assert!((rr.matrix().prob(i, j) - em.matrix().prob(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nary_rr_is_dp_but_weak_for_counts() {
        let alpha = a(0.9);
        for n in [2usize, 4, 8] {
            let rr = NaryRandomizedResponse::new(n, alpha).unwrap();
            assert!(rr.matrix().satisfies_dp(alpha, 1e-12), "n={n}");
            assert!(PropertySet::all().all_hold(rr.matrix(), 1e-12), "n={n}");
            // Low utility: its L0 is worse than EM's (it wastes budget protecting
            // against far-away outputs equally).
            let em = ExplicitFairMechanism::new(n, alpha).unwrap();
            assert!(rescaled_l0(rr.matrix()) >= rescaled_l0(em.matrix()) - 1e-12);
        }
    }

    #[test]
    fn nary_rr_truth_probability_formula() {
        let rr = NaryRandomizedResponse::new(4, a(0.5)).unwrap();
        assert!((rr.truth_probability() - 1.0 / 3.0).abs() < 1e-12);
        assert!((rr.matrix().prob(0, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((rr.matrix().prob(1, 0) - 1.0 / 6.0).abs() < 1e-12);
        assert!(NaryRandomizedResponse::new(0, a(0.5)).is_err());
    }

    #[test]
    fn binary_truth_probability_accessor() {
        let rr = BinaryRandomizedResponse::new(a(0.5)).unwrap();
        assert!((rr.truth_probability() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rr.alpha().value(), 0.5);
    }
}

//! Explicit mechanism constructions.
//!
//! * [`geometric`] — the truncated Geometric Mechanism GM of Ghosh et al.
//!   (Definition 4 / Figure 3), optimal for `L0` under BASICDP alone (Theorem 3).
//! * [`fair`] — the Explicit Fair Mechanism EM introduced by the paper
//!   (Eq. 16 / Figure 4), optimal for `L0` among mechanisms with *all* structural
//!   properties (Theorem 4).
//! * [`uniform`] — the trivial Uniform Mechanism UM (Definition 5), the feasibility
//!   witness for every property combination and the `L0 = 1` baseline.
//! * [`randomized_response`] — binary and n-ary randomized response (Section II-B).
//! * [`exponential`] — the Exponential Mechanism with the distance quality function
//!   (Section II-B, Eq. 2).
//! * [`laplace`] — the rounded-and-truncated Laplace mechanism, discretised to the
//!   matrix form for comparison.

pub mod exponential;
pub mod fair;
pub mod geometric;
pub mod laplace;
pub mod randomized_response;
pub mod uniform;

pub use exponential::ExponentialMechanism;
pub use fair::ExplicitFairMechanism;
pub use geometric::GeometricMechanism;
pub use laplace::LaplaceMechanism;
pub use randomized_response::{BinaryRandomizedResponse, NaryRandomizedResponse};
pub use uniform::UniformMechanism;

//! The Uniform Mechanism UM (Definition 5).
//!
//! UM ignores its input and reports an output drawn uniformly from `{0, …, n}`.  It
//! satisfies every structural property and every privacy level trivially, and its
//! rescaled `L0` score is exactly 1 — the baseline against which the paper's plots
//! are normalised.

use crate::error::CoreError;
use crate::matrix::Mechanism;

/// The trivial uniform mechanism for a group of size `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformMechanism {
    n: usize,
    matrix: Mechanism,
}

impl UniformMechanism {
    /// Construct UM for group size `n ≥ 1`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        let p = 1.0 / (n as f64 + 1.0);
        let matrix = Mechanism::from_fn(n, |_, _| p)?;
        Ok(UniformMechanism { n, matrix })
    }

    /// Group size `n`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }

    /// The rescaled `L0` score of UM, which is 1 by construction of the rescaling.
    pub fn l0_score(&self) -> f64 {
        1.0
    }

    /// The unrescaled expected-error objective `O_{0,Σ}(UM) = n/(n+1)` (Section IV-A).
    pub fn unrescaled_l0(&self) -> f64 {
        self.n as f64 / (self.n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::Alpha;
    use crate::objective::{rescaled_l0, Objective};
    use crate::properties::PropertySet;

    #[test]
    fn satisfies_everything_at_every_privacy_level() {
        for n in [1usize, 3, 10] {
            let um = UniformMechanism::new(n).unwrap();
            assert!(PropertySet::all().all_hold(um.matrix(), 1e-12));
            for alpha in [0.1, 0.5, 1.0] {
                assert!(um.matrix().satisfies_dp(Alpha::new(alpha).unwrap(), 1e-12));
            }
        }
    }

    #[test]
    fn scores_match_section_iv_a() {
        for n in [2usize, 5, 9] {
            let um = UniformMechanism::new(n).unwrap();
            assert!((rescaled_l0(um.matrix()) - um.l0_score()).abs() < 1e-12);
            assert!(
                (Objective::l0().value(um.matrix()).unwrap() - um.unrescaled_l0()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn rejects_zero_group() {
        assert!(UniformMechanism::new(0).is_err());
    }
}

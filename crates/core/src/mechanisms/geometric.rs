//! The range-restricted (truncated) Geometric Mechanism GM (Definition 4, Figure 3).
//!
//! GM adds two-sided geometric noise `Pr[X = δ] = (1−α)/(1+α) · α^{|δ|}` to the true
//! count and clamps the result to `[0, n]`.  The resulting matrix has interior rows
//! `y·α^{|i−j|}` with `y = (1−α)/(1+α)` and boundary rows (outputs 0 and n)
//! `x·α^{distance}` with `x = 1/(1+α)`, where all the clamped mass piles up.
//!
//! GM is the unique `L0`-optimal mechanism under BASICDP alone (Theorem 3), but it
//! is not fair, is column monotone only for `α ≤ 1/2` (Lemma 3), and is weakly honest
//! only for `n ≥ 2α/(1−α)` (Lemma 2) — the pathologies that motivate the paper.

use crate::alpha::Alpha;
use crate::closed_form;
use crate::error::CoreError;
use crate::matrix::Mechanism;

/// The truncated Geometric Mechanism for a group of size `n` at privacy level α.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometricMechanism {
    n: usize,
    alpha: Alpha,
    matrix: Mechanism,
}

impl GeometricMechanism {
    /// Construct GM for group size `n ≥ 1` and privacy parameter α.
    pub fn new(n: usize, alpha: Alpha) -> Result<Self, CoreError> {
        let matrix = Mechanism::from_fn(n, |i, j| Self::probability(n, alpha, i, j))?;
        Ok(GeometricMechanism { n, alpha, matrix })
    }

    /// The closed-form entry `Pr[i | j]` of Figure 3.
    pub fn probability(n: usize, alpha: Alpha, output: usize, input: usize) -> f64 {
        let a = alpha.value();
        let distance = output.abs_diff(input) as i32;
        if output == 0 || output == n {
            // Boundary rows absorb the clamped tail: x * alpha^{distance}.
            closed_form::gm_boundary_coefficient(alpha) * a.powi(distance)
        } else {
            closed_form::gm_interior_coefficient(alpha) * a.powi(distance)
        }
    }

    /// Group size `n`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Privacy parameter α.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }

    /// The closed-form rescaled `L0` score, `2α/(1+α)` (Section IV-B).
    pub fn l0_score(&self) -> f64 {
        closed_form::gm_l0(self.alpha)
    }

    /// Lemma 2: whether this instance satisfies weak honesty.
    pub fn satisfies_weak_honesty(&self) -> bool {
        closed_form::gm_satisfies_weak_honesty(self.n, self.alpha)
    }

    /// Lemma 3: whether this instance satisfies column monotonicity.
    pub fn satisfies_column_monotonicity(&self) -> bool {
        closed_form::gm_satisfies_column_monotonicity(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::rescaled_l0;
    use crate::properties::Property;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn matrix_is_stochastic_and_dp_across_parameters() {
        for n in [1usize, 2, 3, 7, 8, 20] {
            for alpha in [0.1, 0.5, 0.62, 0.9, 0.99, 1.0] {
                let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
                let m = gm.matrix();
                assert!(m.is_column_stochastic(1e-9), "n={n} alpha={alpha}");
                assert!(m.satisfies_dp(a(alpha), 1e-9), "n={n} alpha={alpha}");
            }
        }
    }

    #[test]
    fn example_1_probabilities() {
        // Example 1: n = 2, alpha = 0.9.  Pr[0|1] ≈ 0.47, Pr[1|1] ≈ 0.05, Pr[0|0] ≈ 0.53.
        let gm = GeometricMechanism::new(2, a(0.9)).unwrap();
        let m = gm.matrix();
        assert!((m.prob(0, 1) - 0.47368421052631576).abs() < 1e-9);
        assert!((m.prob(2, 1) - 0.47368421052631576).abs() < 1e-9);
        assert!((m.prob(1, 1) - 0.05263157894736842).abs() < 1e-9);
        assert!((m.prob(0, 0) - 0.5263157894736842).abs() < 1e-9);
        // The chance of the true answer on input 1 is eighteen times lower than an
        // incorrect answer (0.47*2 / 0.052 ≈ 18).
        let wrong = m.prob(0, 1) + m.prob(2, 1);
        assert!((wrong / m.prob(1, 1) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn structure_matches_figure_3() {
        let n = 5;
        let alpha = a(0.62);
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        let m = gm.matrix();
        let x = closed_form::gm_boundary_coefficient(alpha);
        let y = closed_form::gm_interior_coefficient(alpha);
        // Top row: x, x*alpha, ..., x*alpha^n.
        for j in 0..=n {
            assert!((m.prob(0, j) - x * alpha.value().powi(j as i32)).abs() < 1e-12);
        }
        // Interior rows: y * alpha^{|i-j|}.
        for i in 1..n {
            for j in 0..=n {
                let expected = y * alpha.value().powi(i.abs_diff(j) as i32);
                assert!((m.prob(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn l0_matches_closed_form() {
        for n in [2usize, 4, 9, 16] {
            for alpha in [0.5, 0.62, 0.9] {
                let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
                let measured = rescaled_l0(gm.matrix());
                assert!(
                    (measured - gm.l0_score()).abs() < 1e-9,
                    "n={n} alpha={alpha}: {measured} vs {}",
                    gm.l0_score()
                );
            }
        }
    }

    #[test]
    fn row_properties_always_hold_column_properties_depend_on_parameters() {
        // GM is always symmetric, row monotone, and row honest.
        for (n, alpha) in [(4usize, 0.9), (7, 0.5), (10, 0.67)] {
            let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
            let m = gm.matrix();
            assert!(Property::Symmetry.holds(m, 1e-9));
            assert!(Property::RowMonotonicity.holds(m, 1e-9));
            assert!(Property::RowHonesty.holds(m, 1e-9));
        }
        // Lemma 3: column monotonicity iff alpha <= 1/2.
        let cm_ok = GeometricMechanism::new(6, a(0.5)).unwrap();
        assert!(Property::ColumnMonotonicity.holds(cm_ok.matrix(), 1e-9));
        assert!(cm_ok.satisfies_column_monotonicity());
        let cm_bad = GeometricMechanism::new(6, a(0.9)).unwrap();
        assert!(!Property::ColumnMonotonicity.holds(cm_bad.matrix(), 1e-9));
        assert!(!cm_bad.satisfies_column_monotonicity());
    }

    #[test]
    fn weak_honesty_threshold_matches_lemma_2() {
        // alpha = 2/3 -> threshold n >= 4 (n = 1 is the randomized-response special
        // case, which is always weakly honest).
        let alpha = a(2.0 / 3.0);
        for n in 1..=10usize {
            let gm = GeometricMechanism::new(n, alpha).unwrap();
            let predicted = gm.satisfies_weak_honesty();
            let actual = Property::WeakHonesty.holds(gm.matrix(), 1e-9);
            assert_eq!(predicted, actual, "n={n}");
            assert_eq!(actual, n == 1 || n >= 4, "n={n}");
        }
    }

    #[test]
    fn gm_is_never_fair_for_n_above_one() {
        for n in 2..=8usize {
            let gm = GeometricMechanism::new(n, a(0.8)).unwrap();
            assert!(!Property::Fairness.holds(gm.matrix(), 1e-9), "n={n}");
        }
        // n = 1 GM degenerates to randomized response, which is fair.
        let rr = GeometricMechanism::new(1, a(0.8)).unwrap();
        assert!(Property::Fairness.holds(rr.matrix(), 1e-9));
    }

    #[test]
    fn alpha_one_degenerates_to_a_valid_mechanism() {
        // At alpha = 1 the interior rows vanish and all mass sits on outputs 0 and n.
        let gm = GeometricMechanism::new(4, a(1.0)).unwrap();
        let m = gm.matrix();
        assert!(m.is_column_stochastic(1e-9));
        assert!((m.prob(0, 2) - 0.5).abs() < 1e-12);
        assert!((m.prob(4, 2) - 0.5).abs() < 1e-12);
        assert_eq!(m.zero_rows(1e-12), vec![1, 2, 3]);
    }
}

//! The rounded-and-truncated Laplace mechanism, discretised to the matrix form.
//!
//! The paper notes (Section II-B) that the continuous Laplace mechanism "does not
//! easily fit the requirements" of a range-restricted integer mechanism: its output
//! must be rounded to an integer and clamped to `[0, n]`.  This module performs that
//! discretisation exactly (via the Laplace CDF) so the result can be compared, as a
//! matrix, against GM/EM/WM on the same footing.  Rounding and clamping are
//! post-processing, so the matrix inherits the ε-DP guarantee of the underlying
//! Laplace noise with `ε = −ln α`.

use crate::alpha::Alpha;
use crate::error::CoreError;
use crate::matrix::Mechanism;

/// The rounded, truncated Laplace mechanism for count queries.
#[derive(Debug, Clone, PartialEq)]
pub struct LaplaceMechanism {
    n: usize,
    alpha: Alpha,
    matrix: Mechanism,
}

/// CDF of the Laplace distribution with location 0 and scale `b`.
fn laplace_cdf(x: f64, b: f64) -> f64 {
    if x < 0.0 {
        0.5 * (x / b).exp()
    } else {
        1.0 - 0.5 * (-x / b).exp()
    }
}

impl LaplaceMechanism {
    /// Construct the discretised Laplace mechanism for group size `n ≥ 1` at privacy
    /// level α (`ε = −ln α`; the count query has sensitivity 1, so the scale is `1/ε`).
    pub fn new(n: usize, alpha: Alpha) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidGroupSize { value: n });
        }
        let epsilon = alpha.epsilon();
        if epsilon <= 0.0 {
            // alpha = 1 means no privacy budget at all; the Laplace scale diverges and
            // the mechanism degenerates to "uniformly spread by the clamping".  We
            // treat it as the uniform-noise limit: every output equally likely.
            let matrix = Mechanism::from_fn(n, |_, _| 1.0 / (n as f64 + 1.0))?;
            return Ok(LaplaceMechanism { n, alpha, matrix });
        }
        let scale = 1.0 / epsilon;
        let matrix = Mechanism::from_fn(n, |i, j| {
            let centre = j as f64;
            if i == 0 {
                // Everything below 0.5 rounds/clamps to 0.
                laplace_cdf(0.5 - centre, scale)
            } else if i == n {
                1.0 - laplace_cdf(n as f64 - 0.5 - centre, scale)
            } else {
                laplace_cdf(i as f64 + 0.5 - centre, scale)
                    - laplace_cdf(i as f64 - 0.5 - centre, scale)
            }
        })?;
        Ok(LaplaceMechanism { n, alpha, matrix })
    }

    /// Group size `n`.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Privacy parameter α.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// The Laplace scale parameter `1/ε` used by this instance (infinite at α = 1).
    pub fn scale(&self) -> f64 {
        let epsilon = self.alpha.epsilon();
        if epsilon <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / epsilon
        }
    }

    /// Borrow the mechanism matrix.
    pub fn matrix(&self) -> &Mechanism {
        &self.matrix
    }

    /// Consume the builder and return the matrix.
    pub fn into_matrix(self) -> Mechanism {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::GeometricMechanism;
    use crate::objective::rescaled_l0;
    use crate::properties::Property;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn cdf_is_a_valid_distribution_function() {
        assert!((laplace_cdf(0.0, 1.0) - 0.5).abs() < 1e-12);
        assert!(laplace_cdf(-10.0, 1.0) < 1e-4);
        assert!(laplace_cdf(10.0, 1.0) > 1.0 - 1e-4);
        assert!(laplace_cdf(1.0, 1.0) > laplace_cdf(0.5, 1.0));
    }

    #[test]
    fn matrix_is_stochastic_and_dp() {
        for n in [2usize, 5, 9] {
            for alpha in [0.3, 0.62, 0.9] {
                let lap = LaplaceMechanism::new(n, a(alpha)).unwrap();
                assert!(
                    lap.matrix().is_column_stochastic(1e-9),
                    "n={n} alpha={alpha}"
                );
                // Rounding + clamping are post-processing of an epsilon-DP output.
                assert!(
                    lap.matrix().satisfies_dp(a(alpha), 1e-9),
                    "n={n} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn symmetric_and_row_monotone_like_gm() {
        let lap = LaplaceMechanism::new(6, a(0.8)).unwrap();
        assert!(Property::Symmetry.holds(lap.matrix(), 1e-9));
        assert!(Property::RowMonotonicity.holds(lap.matrix(), 1e-9));
    }

    #[test]
    fn worse_than_geometric_for_l0() {
        // Theorem 3 says GM is the unique L0-optimal BASICDP mechanism, so the
        // discretised Laplace mechanism can only do worse (or equal).
        for n in [3usize, 6, 10] {
            for alpha in [0.5, 0.8, 0.95] {
                let lap = LaplaceMechanism::new(n, a(alpha)).unwrap();
                let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
                assert!(
                    rescaled_l0(lap.matrix()) >= rescaled_l0(gm.matrix()) - 1e-9,
                    "n={n} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn alpha_one_degenerates_to_uniform() {
        let lap = LaplaceMechanism::new(4, a(1.0)).unwrap();
        assert!((lap.matrix().prob(2, 0) - 0.2).abs() < 1e-12);
        assert!(lap.scale().is_infinite());
    }

    #[test]
    fn scale_matches_epsilon() {
        let lap = LaplaceMechanism::new(4, a(0.5)).unwrap();
        assert!((lap.scale() - 1.0 / (2.0f64.ln())).abs() < 1e-12);
        assert!(LaplaceMechanism::new(0, a(0.5)).is_err());
    }
}

//! The mechanism-selection flowchart of Figure 5 and the named-mechanism summary of
//! Figure 6 (Section IV-D).
//!
//! Although there are `2^7 = 128` possible property combinations, at most four
//! distinct behaviours arise under the `L0` objective:
//!
//! 1. **EM** whenever fairness is requested (it satisfies everything else for free).
//! 2. **GM** when only row-side properties and symmetry are requested — and also
//!    whenever weak honesty is requested but `n ≥ 2α/(1−α)` (Lemma 2) or a column
//!    property is requested with `α ≤ 1/2` (Lemma 3), because GM then already
//!    satisfies them at the unconstrained-optimal cost.
//! 3. The **WH LP** (weak honesty alone) otherwise, when no column property is needed.
//! 4. The **WH + CM LP** (the paper's WM) when a column property is needed.
//!
//! [`select_mechanism`] reproduces this decision procedure.  Building the chosen
//! mechanism is the job of the typed design path —
//! [`crate::design::MechanismSpec::design`] — which selects here and realises
//! the choice (solving an LP when required).  The free functions [`realize`],
//! [`realize_with_stats`], and [`design_for_properties`] are deprecated shims
//! over that path.

use serde::{Deserialize, Serialize};

use cpm_simplex::{SolveOptions, SolveStats};

use crate::alpha::Alpha;
use crate::closed_form;
use crate::error::CoreError;
use crate::matrix::Mechanism;
use crate::mechanisms::{ExplicitFairMechanism, GeometricMechanism, UniformMechanism};
use crate::objective::Objective;
use crate::properties::{Property, PropertySet};

/// The distinct mechanism choices of Figure 5 / Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismChoice {
    /// The truncated Geometric Mechanism (unconstrained optimum, Theorem 3).
    Geometric,
    /// The Explicit Fair Mechanism (Theorem 4).
    ExplicitFair,
    /// The LP-optimal mechanism with weak honesty (plus the free row properties).
    WeakHonestLp,
    /// The LP-optimal mechanism with weak honesty and column monotonicity — the
    /// paper's WM.
    WeakHonestColumnMonotoneLp,
    /// The trivial uniform baseline (never selected by the flowchart; provided for
    /// completeness of Figure 6).
    Uniform,
}

impl MechanismChoice {
    /// Short display name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            MechanismChoice::Geometric => "GM",
            MechanismChoice::ExplicitFair => "EM",
            MechanismChoice::WeakHonestLp => "WH-LP",
            MechanismChoice::WeakHonestColumnMonotoneLp => "WM",
            MechanismChoice::Uniform => "UM",
        }
    }
}

/// Figure 5: choose the mechanism that optimally satisfies `requested` under the
/// `L0` objective at group size `n` and privacy level α.
pub fn select_mechanism(requested: PropertySet, n: usize, alpha: Alpha) -> MechanismChoice {
    let closed = requested.closure();

    // Fairness (with anything else) → the Explicit Fair Mechanism.
    if closed.contains(Property::Fairness) {
        return MechanismChoice::ExplicitFair;
    }

    let wants_column_property =
        closed.contains(Property::ColumnHonesty) || closed.contains(Property::ColumnMonotonicity);
    let wants_weak_honesty = closed.contains(Property::WeakHonesty);

    // In the weak-privacy regime alpha <= 1/2, GM already satisfies the column
    // properties (Lemma 3) and hence weak honesty, so GM covers every request that
    // does not include fairness.
    if alpha.value() <= 0.5 {
        return MechanismChoice::Geometric;
    }

    if wants_column_property {
        return MechanismChoice::WeakHonestColumnMonotoneLp;
    }

    if wants_weak_honesty {
        // Lemma 2: for n >= 2 alpha / (1 - alpha), GM is already weakly honest.
        if closed_form::gm_satisfies_weak_honesty(n, alpha) {
            return MechanismChoice::Geometric;
        }
        return MechanismChoice::WeakHonestLp;
    }

    // Only row-side properties and/or symmetry: GM has them all at optimal cost.
    MechanismChoice::Geometric
}

/// Build the actual mechanism for a [`MechanismChoice`], solving the relevant LP when
/// the choice is one of the two LP-defined mechanisms.
#[deprecated(
    since = "0.1.0",
    note = "use `MechanismSpec::new(n, alpha).properties(…).build()?.design()?` \
            (see `cpm_core::design`); `realize_choice` semantics live on behind \
            `MechanismSpec::design`"
)]
pub fn realize(
    choice: MechanismChoice,
    n: usize,
    alpha: Alpha,
    options: &SolveOptions,
) -> Result<Mechanism, CoreError> {
    realize_choice(choice, n, alpha, Some(options), None).map(|(mechanism, _, _)| mechanism)
}

/// [`realize`], additionally reporting the simplex statistics when the choice
/// required an LP solve (`None` for the closed-form constructions).
#[deprecated(
    since = "0.1.0",
    note = "use `MechanismSpec::…design()?`, which returns a `DesignedMechanism` \
            carrying the mechanism, the choice, and the solver statistics together"
)]
pub fn realize_with_stats(
    choice: MechanismChoice,
    n: usize,
    alpha: Alpha,
    options: Option<&SolveOptions>,
) -> Result<(Mechanism, Option<SolveStats>), CoreError> {
    realize_choice(choice, n, alpha, options, None).map(|(m, stats, _)| (m, stats))
}

/// A realised choice: the matrix, the LP statistics when the simplex ran, and
/// the LP's optimal basis when one was reported.
pub(crate) type Realized = (Mechanism, Option<SolveStats>, Option<Vec<usize>>);

/// Materialise one [`MechanismChoice`]: closed forms for GM/EM/UM, the
/// (symmetrised) LP optimum for the two LP-defined choices.
///
/// `options: None` lets each LP pick its own size-scaled
/// [`crate::lp::DesignProblem::recommended_options`] — the right default for
/// callers (such as a design cache) that serve arbitrary `(n, α)` pairs rather
/// than one known problem size.  `warm_basis` seeds the LP solve from an
/// α-neighbour's optimal basis when the choice requires the simplex (closed
/// forms ignore it; a seed that does not fit the chosen LP falls back to the
/// cold path inside the solver).  This is the single realisation routine
/// behind [`crate::design::MechanismSpec::design`] and the deprecated free
/// functions.  The third return slot is the LP's optimal basis, when one ran.
pub(crate) fn realize_choice(
    choice: MechanismChoice,
    n: usize,
    alpha: Alpha,
    options: Option<&SolveOptions>,
    warm_basis: Option<&[usize]>,
) -> Result<Realized, CoreError> {
    let solve_lp = |properties: PropertySet| -> Result<Realized, CoreError> {
        let problem = crate::lp::DesignProblem::constrained(n, alpha, Objective::l0(), properties)
            .with_warm_basis(warm_basis.map(|b| b.to_vec()));
        let solution = match options {
            Some(options) => problem.solve_with(options)?,
            None => problem.solve()?,
        };
        Ok((
            crate::symmetrize::symmetrize(&solution.mechanism),
            Some(solution.solver_stats),
            solution.optimal_basis,
        ))
    };
    match choice {
        MechanismChoice::Geometric => {
            Ok((GeometricMechanism::new(n, alpha)?.into_matrix(), None, None))
        }
        MechanismChoice::ExplicitFair => Ok((
            ExplicitFairMechanism::new(n, alpha)?.into_matrix(),
            None,
            None,
        )),
        MechanismChoice::Uniform => Ok((UniformMechanism::new(n)?.into_matrix(), None, None)),
        MechanismChoice::WeakHonestLp => solve_lp(
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::RowMonotonicity)
                .with(Property::Symmetry),
        ),
        MechanismChoice::WeakHonestColumnMonotoneLp => solve_lp(
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::RowMonotonicity)
                .with(Property::ColumnMonotonicity)
                .with(Property::Symmetry),
        ),
    }
}

/// Convenience wrapper: select per Figure 5 and build the mechanism in one call.
#[deprecated(
    since = "0.1.0",
    note = "use `MechanismSpec::new(n, alpha).properties(requested).build()?.design()?`, \
            whose `DesignedMechanism` carries the choice, matrix, stats, and report"
)]
pub fn design_for_properties(
    requested: PropertySet,
    n: usize,
    alpha: Alpha,
) -> Result<(MechanismChoice, Mechanism), CoreError> {
    let designed = crate::design::MechanismSpec::new(n, alpha)
        .properties(requested)
        .build()?
        .design()?;
    let choice = designed
        .choice()
        .expect("L0 designs always route through the flowchart");
    Ok((choice, designed.into_mechanism()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::MechanismSpec;
    use crate::lp::formulation::optimal_constrained;
    use crate::objective::rescaled_l0;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    fn set(props: &[Property]) -> PropertySet {
        props.iter().copied().collect()
    }

    fn design(requested: PropertySet, n: usize, alpha: Alpha) -> (MechanismChoice, Mechanism) {
        let designed = MechanismSpec::new(n, alpha)
            .properties(requested)
            .build()
            .unwrap()
            .design()
            .unwrap();
        let choice = designed.choice().expect("L0 designs carry a choice");
        (choice, designed.into_mechanism())
    }

    #[test]
    fn fairness_always_selects_em() {
        for extra in [
            vec![Property::Fairness],
            vec![Property::Fairness, Property::ColumnMonotonicity],
            vec![
                Property::Fairness,
                Property::Symmetry,
                Property::WeakHonesty,
            ],
        ] {
            assert_eq!(
                select_mechanism(set(&extra), 8, a(0.9)),
                MechanismChoice::ExplicitFair
            );
        }
    }

    #[test]
    fn row_only_requests_select_gm() {
        for props in [
            vec![],
            vec![Property::Symmetry],
            vec![Property::RowHonesty],
            vec![Property::RowMonotonicity, Property::Symmetry],
        ] {
            assert_eq!(
                select_mechanism(set(&props), 8, a(0.9)),
                MechanismChoice::Geometric
            );
        }
    }

    #[test]
    fn weak_privacy_always_selects_gm_unless_fair() {
        // alpha <= 1/2: GM subsumes WM (Lemma 3), so only EM and GM remain.
        assert_eq!(
            select_mechanism(set(&[Property::ColumnMonotonicity]), 5, a(0.5)),
            MechanismChoice::Geometric
        );
        assert_eq!(
            select_mechanism(set(&[Property::WeakHonesty]), 2, a(0.4)),
            MechanismChoice::Geometric
        );
        assert_eq!(
            select_mechanism(set(&[Property::Fairness]), 5, a(0.5)),
            MechanismChoice::ExplicitFair
        );
    }

    #[test]
    fn weak_honesty_selects_gm_above_the_lemma_2_threshold() {
        // alpha = 2/3 -> threshold 4.
        let alpha = a(2.0 / 3.0);
        assert_eq!(
            select_mechanism(set(&[Property::WeakHonesty]), 5, alpha),
            MechanismChoice::Geometric
        );
        assert_eq!(
            select_mechanism(set(&[Property::WeakHonesty]), 3, alpha),
            MechanismChoice::WeakHonestLp
        );
    }

    #[test]
    fn column_requests_select_wm_in_the_strong_privacy_regime() {
        assert_eq!(
            select_mechanism(set(&[Property::ColumnHonesty]), 8, a(0.9)),
            MechanismChoice::WeakHonestColumnMonotoneLp
        );
        assert_eq!(
            select_mechanism(
                set(&[Property::ColumnMonotonicity, Property::RowHonesty]),
                8,
                a(0.9)
            ),
            MechanismChoice::WeakHonestColumnMonotoneLp
        );
    }

    #[test]
    fn realized_mechanisms_satisfy_what_was_requested() {
        let cases: Vec<(Vec<Property>, usize, f64)> = vec![
            (vec![Property::Fairness], 4, 0.9),
            (vec![Property::WeakHonesty], 3, 0.9),
            (vec![Property::ColumnMonotonicity], 4, 0.9),
            (vec![Property::RowMonotonicity], 5, 0.62),
            (vec![], 5, 0.62),
        ];
        for (props, n, alpha) in cases {
            let requested = set(&props);
            let (choice, mechanism) = design(requested, n, a(alpha));
            assert!(
                requested.all_hold(&mechanism, 1e-6),
                "{requested} not satisfied by {}",
                choice.short_name()
            );
            assert!(mechanism.satisfies_dp(a(alpha), 1e-6));
        }
    }

    #[test]
    fn the_flowchart_never_loses_utility() {
        // Whatever Figure 5 picks must be at least as good (in L0) as solving the LP
        // with the requested properties directly.
        let alpha = a(0.9);
        let n = 4;
        for props in [
            set(&[Property::WeakHonesty]),
            set(&[Property::ColumnHonesty]),
            set(&[Property::RowMonotonicity]),
        ] {
            let (_, shortcut) = design(props, n, alpha);
            let direct = optimal_constrained(n, alpha, Objective::l0(), props).unwrap();
            assert!(
                rescaled_l0(&shortcut) <= rescaled_l0(&direct.mechanism) + 1e-6,
                "{props}"
            );
        }
    }

    #[test]
    fn realize_choice_reports_lp_statistics_only_for_lp_choices() {
        let alpha = a(0.9);
        let (gm, stats, basis) =
            realize_choice(MechanismChoice::Geometric, 6, alpha, None, None).unwrap();
        assert!(stats.is_none(), "GM is closed-form, no LP solve");
        assert!(basis.is_none(), "no LP, no basis");
        assert!(gm.satisfies_dp(alpha, 1e-9));

        let (wm, stats, basis) = realize_choice(
            MechanismChoice::WeakHonestColumnMonotoneLp,
            4,
            alpha,
            None,
            None,
        )
        .unwrap();
        let stats = stats.expect("WM requires an LP solve");
        assert!(stats.phase1_iterations + stats.phase2_iterations > 0);
        assert!(basis.is_some(), "an LP choice reports its optimal basis");
        assert!(wm.satisfies_dp(alpha, 1e-6));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_typed_design_path() {
        let alpha = a(0.9);
        // realize / realize_with_stats produce the same matrix as realize_choice.
        let direct = realize(
            MechanismChoice::WeakHonestColumnMonotoneLp,
            4,
            alpha,
            &SolveOptions::default(),
        )
        .unwrap();
        let (wm, stats) =
            realize_with_stats(MechanismChoice::WeakHonestColumnMonotoneLp, 4, alpha, None)
                .unwrap();
        assert!(stats.is_some());
        for i in 0..wm.dim() {
            for j in 0..wm.dim() {
                assert!((wm.prob(i, j) - direct.prob(i, j)).abs() < 1e-9);
            }
        }
        // design_for_properties is now a shim over MechanismSpec: bit-for-bit equal.
        let requested = set(&[Property::ColumnMonotonicity]);
        let (old_choice, old) = design_for_properties(requested, 4, alpha).unwrap();
        let (new_choice, new) = design(requested, 4, alpha);
        assert_eq!(old_choice, new_choice);
        assert_eq!(old.entries(), new.entries());
    }

    #[test]
    fn short_names_match_the_paper() {
        assert_eq!(MechanismChoice::Geometric.short_name(), "GM");
        assert_eq!(MechanismChoice::ExplicitFair.short_name(), "EM");
        assert_eq!(
            MechanismChoice::WeakHonestColumnMonotoneLp.short_name(),
            "WM"
        );
        assert_eq!(MechanismChoice::Uniform.short_name(), "UM");
    }
}

//! Objective (loss) functions for mechanism design (Definition 3 and Eq. (1)).
//!
//! The paper evaluates a mechanism `P` with
//!
//! ```text
//! O_{p,⊕}(P) = ⊕_j  w_j Σ_i Pr[i|j] |i − j|^p
//! ```
//!
//! where `⊕` is `Σ` (expected loss under the prior `w`) or `max` (worst case over
//! inputs).  The headline objective of the paper is the rescaled `L0`
//! (Eq. 1): `L0(P) = (n+1)/n − trace(P)/n`, the (rescaled) probability of reporting a
//! wrong answer under a uniform prior, normalised so the trivial uniform mechanism
//! scores exactly 1.  `L0,d` generalises this to the probability of reporting an
//! answer *more than* `d` steps from the truth.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::matrix::Mechanism;

/// The per-cell penalty `|i − j|^p` (or its thresholded variants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// `p = 0` with the convention `0^0 = 0`: penalise every wrong answer equally.
    /// This is the paper's `L0`.
    ZeroOne,
    /// Penalise answers strictly more than `d` steps from the truth (the paper's
    /// `L0,d`; `d = 0` coincides with [`LossKind::ZeroOne`]).
    ZeroOneBeyond(usize),
    /// `p = 1`: absolute error (the paper's `L1`).
    Absolute,
    /// `p = 2`: squared error (the paper's `L2`).
    Squared,
}

impl LossKind {
    /// The penalty assigned to reporting `output` when the truth is `input`.
    #[inline]
    pub fn penalty(self, output: usize, input: usize) -> f64 {
        let d = output.abs_diff(input);
        match self {
            LossKind::ZeroOne => {
                if d == 0 {
                    0.0
                } else {
                    1.0
                }
            }
            LossKind::ZeroOneBeyond(threshold) => {
                if d > threshold {
                    1.0
                } else {
                    0.0
                }
            }
            LossKind::Absolute => d as f64,
            LossKind::Squared => (d * d) as f64,
        }
    }

    /// Human-readable name matching the paper (`L0`, `L0,d`, `L1`, `L2`).
    pub fn name(self) -> String {
        match self {
            LossKind::ZeroOne => "L0".to_string(),
            LossKind::ZeroOneBeyond(d) => format!("L0,{d}"),
            LossKind::Absolute => "L1".to_string(),
            LossKind::Squared => "L2".to_string(),
        }
    }
}

/// How per-input losses are aggregated across inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Expected loss under the prior weights (`⊕ = Σ`).
    Sum,
    /// Worst case over inputs (`⊕ = max`), as in the minimax setting of
    /// Gupte–Sundararajan.
    Max,
}

/// Prior weights over the inputs `0..=n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Prior {
    /// The uniform prior `w_j = 1/(n+1)` used throughout the paper unless stated.
    Uniform,
    /// An explicit prior; must have length `n + 1`, be non-negative, and sum to 1.
    Weights(Vec<f64>),
}

impl Prior {
    /// Materialise the weights for a group of size `n`.
    pub fn weights(&self, n: usize) -> Result<Vec<f64>, CoreError> {
        match self {
            Prior::Uniform => Ok(vec![1.0 / (n as f64 + 1.0); n + 1]),
            Prior::Weights(w) => {
                if w.len() != n + 1 {
                    return Err(CoreError::InvalidWeights {
                        reason: "prior length must be n + 1",
                    });
                }
                if w.iter().any(|&x| !x.is_finite() || x < 0.0) {
                    return Err(CoreError::InvalidWeights {
                        reason: "prior weights must be finite and non-negative",
                    });
                }
                let total: f64 = w.iter().sum();
                if (total - 1.0).abs() > 1e-6 {
                    return Err(CoreError::InvalidWeights {
                        reason: "prior weights must sum to 1",
                    });
                }
                Ok(w.clone())
            }
        }
    }
}

/// A complete objective: penalty kind, prior, and aggregation operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// The per-cell penalty.
    pub loss: LossKind,
    /// Prior over inputs.
    pub prior: Prior,
    /// Aggregation across inputs.
    pub aggregator: Aggregator,
}

impl Objective {
    /// The paper's default objective: expected `L0` loss under a uniform prior.
    pub fn l0() -> Self {
        Objective {
            loss: LossKind::ZeroOne,
            prior: Prior::Uniform,
            aggregator: Aggregator::Sum,
        }
    }

    /// Expected `L1` (absolute error) under a uniform prior.
    pub fn l1() -> Self {
        Objective {
            loss: LossKind::Absolute,
            prior: Prior::Uniform,
            aggregator: Aggregator::Sum,
        }
    }

    /// Expected `L2` (squared error) under a uniform prior.
    pub fn l2() -> Self {
        Objective {
            loss: LossKind::Squared,
            prior: Prior::Uniform,
            aggregator: Aggregator::Sum,
        }
    }

    /// Expected `L0,d` loss under a uniform prior.
    pub fn l0_beyond(d: usize) -> Self {
        Objective {
            loss: LossKind::ZeroOneBeyond(d),
            prior: Prior::Uniform,
            aggregator: Aggregator::Sum,
        }
    }

    /// Evaluate `O_{p,⊕}` (Definition 3) on a mechanism: the *unrescaled* value.
    pub fn value(&self, mechanism: &Mechanism) -> Result<f64, CoreError> {
        let n = mechanism.group_size();
        let weights = self.prior.weights(n)?;
        let per_input = |j: usize| -> f64 {
            (0..mechanism.dim())
                .map(|i| mechanism.prob(i, j) * self.loss.penalty(i, j))
                .sum()
        };
        let value = match self.aggregator {
            Aggregator::Sum => (0..mechanism.dim())
                .map(|j| weights[j] * per_input(j))
                .sum(),
            Aggregator::Max => (0..mechanism.dim())
                .map(per_input)
                .fold(f64::NEG_INFINITY, f64::max),
        };
        Ok(value)
    }
}

/// The closed, enumerable family of objectives the design path keys on.
///
/// [`Objective`] is deliberately open-ended (arbitrary priors are `Vec<f64>`),
/// which makes it a poor hash key.  The typed design entry point
/// ([`crate::design::MechanismSpec`]) keys the family actually used by the
/// paper's designs — uniform prior, sum-aggregated losses — and converts to a
/// full [`Objective`] on demand.  Designs outside this family (explicit priors,
/// the minimax aggregator) go through [`crate::lp::DesignProblem`] directly.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum ObjectiveKey {
    /// The paper's headline `L0` (probability of any wrong answer).
    #[default]
    L0,
    /// `L0,d`: probability of an answer more than `d` steps from the truth.
    L0Beyond(usize),
    /// Expected absolute error `L1`.
    L1,
    /// Expected squared error `L2`.
    L2,
}

impl ObjectiveKey {
    /// The full [`Objective`] this key denotes.
    pub fn to_objective(self) -> Objective {
        match self {
            ObjectiveKey::L0 => Objective::l0(),
            ObjectiveKey::L0Beyond(d) => Objective::l0_beyond(d),
            ObjectiveKey::L1 => Objective::l1(),
            ObjectiveKey::L2 => Objective::l2(),
        }
    }

    /// Parse the paper's notation: `L0`, `L1`, `L2`, or `L0,d` (e.g. `L0,2`).
    /// Case-insensitive; an empty string means the default `L0`.
    pub fn parse(text: &str) -> Option<ObjectiveKey> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Some(ObjectiveKey::L0);
        }
        match trimmed.to_ascii_uppercase().as_str() {
            "L0" => Some(ObjectiveKey::L0),
            "L1" => Some(ObjectiveKey::L1),
            "L2" => Some(ObjectiveKey::L2),
            upper => {
                let d = upper.strip_prefix("L0,")?.trim().parse().ok()?;
                Some(ObjectiveKey::L0Beyond(d))
            }
        }
    }

    /// The paper's name for the objective (`L0`, `L0,d`, `L1`, `L2`).
    pub fn name(self) -> String {
        self.to_objective().loss.name()
    }
}

impl std::str::FromStr for ObjectiveKey {
    type Err = CoreError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        ObjectiveKey::parse(text).ok_or_else(|| CoreError::UnknownObjective {
            text: text.to_string(),
        })
    }
}

impl std::fmt::Display for ObjectiveKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The rescaled `L0` score of Eq. (1): `(n+1)/n − trace(P)/n`.
///
/// Equals `(n+1)/n` times the probability (under a uniform prior) of reporting a
/// wrong answer, and is exactly 1 for the trivial uniform mechanism.
pub fn rescaled_l0(mechanism: &Mechanism) -> f64 {
    let n = mechanism.group_size() as f64;
    (n + 1.0) / n - mechanism.trace() / n
}

/// The rescaled `L0,d` score: `(n+1)/n` times the probability mass more than `d`
/// steps off the main diagonal under a uniform prior, so that `d = 0` recovers
/// [`rescaled_l0`].
pub fn rescaled_l0_d(mechanism: &Mechanism, d: usize) -> Result<f64, CoreError> {
    let n = mechanism.group_size();
    if d > n {
        return Err(CoreError::InvalidDistanceThreshold { d, n });
    }
    let dim = mechanism.dim();
    let uniform = 1.0 / dim as f64;
    let mass: f64 = (0..dim)
        .map(|j| {
            (0..dim)
                .filter(|&i| i.abs_diff(j) > d)
                .map(|i| mechanism.prob(i, j))
                .sum::<f64>()
                * uniform
        })
        .sum();
    Ok((dim as f64) / (n as f64) * mass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_mechanism(n: usize) -> Mechanism {
        Mechanism::from_fn(n, |_, _| 1.0 / (n as f64 + 1.0)).unwrap()
    }

    fn identity_mechanism(n: usize) -> Mechanism {
        Mechanism::from_fn(n, |i, j| if i == j { 1.0 } else { 0.0 }).unwrap()
    }

    #[test]
    fn penalties_match_definitions() {
        assert_eq!(LossKind::ZeroOne.penalty(3, 3), 0.0);
        assert_eq!(LossKind::ZeroOne.penalty(3, 4), 1.0);
        assert_eq!(LossKind::ZeroOneBeyond(1).penalty(3, 4), 0.0);
        assert_eq!(LossKind::ZeroOneBeyond(1).penalty(3, 5), 1.0);
        assert_eq!(LossKind::Absolute.penalty(1, 4), 3.0);
        assert_eq!(LossKind::Squared.penalty(1, 4), 9.0);
        assert_eq!(LossKind::ZeroOneBeyond(2).name(), "L0,2");
        assert_eq!(LossKind::ZeroOne.name(), "L0");
    }

    #[test]
    fn identity_mechanism_has_zero_loss() {
        let m = identity_mechanism(5);
        for objective in [Objective::l0(), Objective::l1(), Objective::l2()] {
            assert_eq!(objective.value(&m).unwrap(), 0.0);
        }
        assert!((rescaled_l0(&m)).abs() < 1e-12);
    }

    #[test]
    fn uniform_mechanism_scores_match_the_paper() {
        // The paper: O_{0,Σ}(UM) = n/(n+1) and the rescaled L0 of UM is exactly 1.
        for n in [2, 4, 7, 16] {
            let m = uniform_mechanism(n);
            let o = Objective::l0().value(&m).unwrap();
            assert!((o - n as f64 / (n as f64 + 1.0)).abs() < 1e-12);
            assert!((rescaled_l0(&m) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rescaled_l0_consistency_with_unrescaled() {
        let m = uniform_mechanism(6);
        let unrescaled = Objective::l0().value(&m).unwrap();
        let n = 6.0;
        assert!((rescaled_l0(&m) - (n + 1.0) / n * unrescaled).abs() < 1e-12);
    }

    #[test]
    fn rescaled_l0_d_reduces_to_l0_at_zero() {
        let m = uniform_mechanism(5);
        assert!((rescaled_l0_d(&m, 0).unwrap() - rescaled_l0(&m)).abs() < 1e-12);
        // For the uniform mechanism, L0,d = (n+1)/n * (# cells with |i-j| > d) / (n+1)^2.
        let l01 = rescaled_l0_d(&m, 1).unwrap();
        let n = 5usize;
        let count = (0..=n)
            .flat_map(|j| (0..=n).map(move |i| (i, j)))
            .filter(|(i, j)| i.abs_diff(*j) > 1)
            .count();
        let expected =
            (n as f64 + 1.0) / n as f64 * count as f64 / ((n as f64 + 1.0) * (n as f64 + 1.0));
        assert!((l01 - expected).abs() < 1e-12);
    }

    #[test]
    fn rescaled_l0_d_rejects_large_thresholds() {
        let m = uniform_mechanism(3);
        assert!(matches!(
            rescaled_l0_d(&m, 4),
            Err(CoreError::InvalidDistanceThreshold { d: 4, n: 3 })
        ));
    }

    #[test]
    fn max_aggregator_takes_worst_input() {
        // A mechanism that is perfect on input 0 but noisy on input 2.
        let m = Mechanism::from_fn(2, |i, j| match j {
            0 => {
                if i == 0 {
                    1.0
                } else {
                    0.0
                }
            }
            1 => {
                if i == 1 {
                    0.8
                } else {
                    0.1
                }
            }
            _ => 1.0 / 3.0,
        })
        .unwrap();
        let minimax = Objective {
            loss: LossKind::ZeroOne,
            prior: Prior::Uniform,
            aggregator: Aggregator::Max,
        };
        assert!((minimax.value(&m).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_priors_are_validated() {
        assert!(Prior::Weights(vec![0.5, 0.5]).weights(1).is_ok());
        assert!(Prior::Weights(vec![0.5, 0.5]).weights(2).is_err());
        assert!(Prior::Weights(vec![0.7, 0.7]).weights(1).is_err());
        assert!(Prior::Weights(vec![-0.5, 1.5]).weights(1).is_err());
    }

    #[test]
    fn weighted_objective_uses_the_prior() {
        // All prior mass on input 0: only column 0 matters.
        let m = Mechanism::from_fn(2, |i, j| match (i, j) {
            (0, 0) => 0.9,
            (1, 0) => 0.1,
            (2, 0) => 0.0,
            _ => 1.0 / 3.0,
        })
        .unwrap();
        let objective = Objective {
            loss: LossKind::ZeroOne,
            prior: Prior::Weights(vec![1.0, 0.0, 0.0]),
            aggregator: Aggregator::Sum,
        };
        assert!((objective.value(&m).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn objective_key_parses_the_paper_notation() {
        assert_eq!(ObjectiveKey::parse(""), Some(ObjectiveKey::L0));
        assert_eq!(ObjectiveKey::parse("l0"), Some(ObjectiveKey::L0));
        assert_eq!(ObjectiveKey::parse("L1"), Some(ObjectiveKey::L1));
        assert_eq!(ObjectiveKey::parse("L2"), Some(ObjectiveKey::L2));
        assert_eq!(ObjectiveKey::parse("L0,2"), Some(ObjectiveKey::L0Beyond(2)));
        assert_eq!(ObjectiveKey::parse("nope"), None);
        assert_eq!(ObjectiveKey::L0Beyond(3).name(), "L0,3");
        assert_eq!(
            "L0,3".parse::<ObjectiveKey>(),
            Ok(ObjectiveKey::L0Beyond(3))
        );
        assert!(matches!(
            "bogus".parse::<ObjectiveKey>(),
            Err(CoreError::UnknownObjective { .. })
        ));
        assert_eq!(ObjectiveKey::default(), ObjectiveKey::L0);
    }

    #[test]
    fn objective_key_denotes_the_right_objective() {
        assert_eq!(ObjectiveKey::L0.to_objective(), Objective::l0());
        assert_eq!(ObjectiveKey::L1.to_objective(), Objective::l1());
        assert_eq!(ObjectiveKey::L2.to_objective(), Objective::l2());
        assert_eq!(
            ObjectiveKey::L0Beyond(2).to_objective(),
            Objective::l0_beyond(2)
        );
    }

    #[test]
    fn fair_mechanism_objective_is_prior_independent() {
        // Lemma 1: for fair mechanisms the L0 objective is 1 - y for any prior.
        let fair = Mechanism::from_fn(2, |i, j| if i == j { 0.5 } else { 0.25 }).unwrap();
        let uniform = Objective::l0().value(&fair).unwrap();
        let skewed = Objective {
            loss: LossKind::ZeroOne,
            prior: Prior::Weights(vec![0.7, 0.2, 0.1]),
            aggregator: Aggregator::Sum,
        }
        .value(&fair)
        .unwrap();
        assert!((uniform - 0.5).abs() < 1e-12);
        assert!((skewed - 0.5).abs() < 1e-12);
    }
}

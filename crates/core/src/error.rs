//! Error type for mechanism construction and constrained mechanism design.

use std::fmt;

use cpm_simplex::SimplexError;

/// Errors returned by the `cpm-core` public API.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The privacy parameter α must lie in `(0, 1]`.
    InvalidAlpha {
        /// The offending value.
        value: f64,
    },
    /// The group size `n` must be at least 1 (a mechanism acts on counts `0..=n`).
    InvalidGroupSize {
        /// The offending value.
        value: usize,
    },
    /// A probability matrix was rejected because a column does not sum to one or an
    /// entry is negative.
    NotColumnStochastic {
        /// Index of the offending column.
        column: usize,
        /// Sum of that column.
        sum: f64,
    },
    /// The supplied entries do not form a square `(n+1) × (n+1)` matrix.
    DimensionMismatch {
        /// Number of entries supplied.
        entries: usize,
        /// Expected number of entries.
        expected: usize,
    },
    /// Prior weights must be non-negative and sum to one.
    InvalidWeights {
        /// Explanation of the failure.
        reason: &'static str,
    },
    /// The `L0,d` threshold `d` must be at most `n`.
    InvalidDistanceThreshold {
        /// The offending threshold.
        d: usize,
        /// The group size.
        n: usize,
    },
    /// A property short name (RH, RM, CH, CM, F, WH, S) failed to parse.
    UnknownProperty {
        /// The unrecognised token.
        token: String,
    },
    /// An objective name (`L0`, `L0,d`, `L1`, `L2`) failed to parse.
    UnknownObjective {
        /// The unrecognised text.
        text: String,
    },
    /// A [`crate::design::MechanismSpec`] failed validation at `build()`.
    InvalidSpec {
        /// Explanation of the failure.
        reason: String,
    },
    /// A mechanism matrix is (numerically) singular, so it has no inverse and
    /// admits no matrix-inversion frequency estimator — e.g. the Uniform
    /// mechanism, whose identical columns carry no information to invert.
    SingularMatrix {
        /// Elimination column at which no usable pivot was found.
        column: usize,
    },
    /// The underlying LP solver failed (infeasible, unbounded, or iteration limit).
    Solver(SimplexError),
    /// The LP produced a solution that is not a valid mechanism even after cleanup
    /// (should not happen; indicates a numerical breakdown worth reporting).
    DegenerateSolution {
        /// Explanation of the failure.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidAlpha { value } => {
                write!(f, "privacy parameter alpha must be in (0, 1], got {value}")
            }
            CoreError::InvalidGroupSize { value } => {
                write!(f, "group size n must be >= 1, got {value}")
            }
            CoreError::NotColumnStochastic { column, sum } => write!(
                f,
                "column {column} of the mechanism is not a probability distribution (sum = {sum})"
            ),
            CoreError::DimensionMismatch { entries, expected } => write!(
                f,
                "expected {expected} matrix entries for a square mechanism, got {entries}"
            ),
            CoreError::InvalidWeights { reason } => write!(f, "invalid prior weights: {reason}"),
            CoreError::InvalidDistanceThreshold { d, n } => {
                write!(f, "distance threshold d = {d} exceeds group size n = {n}")
            }
            CoreError::UnknownProperty { token } => {
                write!(
                    f,
                    "unknown property {token:?} (expected RH, RM, CH, CM, F, WH, or S)"
                )
            }
            CoreError::UnknownObjective { text } => {
                write!(
                    f,
                    "unknown objective {text:?} (expected L0, L0,d, L1, or L2)"
                )
            }
            CoreError::InvalidSpec { reason } => write!(f, "invalid mechanism spec: {reason}"),
            CoreError::SingularMatrix { column } => write!(
                f,
                "mechanism matrix is singular (no pivot in column {column}); \
                 it has no inverse and supports no unbiased frequency estimator"
            ),
            CoreError::Solver(err) => write!(f, "LP solver error: {err}"),
            CoreError::DegenerateSolution { reason } => {
                write!(f, "LP returned a degenerate mechanism: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Solver(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SimplexError> for CoreError {
    fn from(err: SimplexError) -> Self {
        CoreError::Solver(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CoreError::InvalidAlpha { value: 1.5 };
        assert!(err.to_string().contains("1.5"));
        let err = CoreError::NotColumnStochastic {
            column: 3,
            sum: 0.9,
        };
        assert!(err.to_string().contains("column 3"));
        let err: CoreError = SimplexError::Infeasible.into();
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn solver_errors_carry_a_source() {
        use std::error::Error;
        let err = CoreError::Solver(SimplexError::Unbounded);
        assert!(err.source().is_some());
        assert!(CoreError::InvalidGroupSize { value: 0 }.source().is_none());
    }
}

//! Analytic closed forms from the paper (Sections IV-B and IV-C).
//!
//! These are used both as fast paths (computing the `L0` score of GM / EM / UM for a
//! sweep without building matrices or solving LPs) and as oracles in tests: the
//! constructed matrices and the LP solutions must agree with these formulas.

use crate::alpha::Alpha;

/// The boundary-row coefficient of the Geometric Mechanism, `x = 1 / (1 + α)`
/// (Figure 3).
pub fn gm_boundary_coefficient(alpha: Alpha) -> f64 {
    1.0 / (1.0 + alpha.value())
}

/// The interior-row coefficient of the Geometric Mechanism, `y = (1 − α) / (1 + α)`
/// (Figure 3).
pub fn gm_interior_coefficient(alpha: Alpha) -> f64 {
    let a = alpha.value();
    (1.0 - a) / (1.0 + a)
}

/// The rescaled `L0` score of the Geometric Mechanism: `2α / (1 + α)`
/// (Section IV-B).  Independent of the group size `n`.
pub fn gm_l0(alpha: Alpha) -> f64 {
    let a = alpha.value();
    2.0 * a / (1.0 + a)
}

/// Lemma 2: the Geometric Mechanism satisfies weak honesty iff `n ≥ 2α / (1 − α)`.
///
/// The lemma's argument bounds the *interior* diagonal entries `y`, which only exist
/// for `n ≥ 2`; for `n = 1` both diagonal entries are the boundary value
/// `x = 1/(1+α) ≥ 1/2`, so GM (= randomized response) is always weakly honest there.
pub fn gm_satisfies_weak_honesty(n: usize, alpha: Alpha) -> bool {
    n == 1 || n as f64 >= alpha.weak_honesty_threshold()
}

/// Lemma 3: the Geometric Mechanism satisfies column monotonicity iff `α ≤ 1/2`.
pub fn gm_satisfies_column_monotonicity(alpha: Alpha) -> bool {
    alpha.geometric_is_column_monotone()
}

/// The diagonal value `y` of the Explicit Fair Mechanism (Section IV-C).
///
/// The value is fixed by requiring every column of the Eq. (16) construction to sum
/// to one.  Every column contains the same multiset of powers of α, whose sum is
///
/// * even `n`:  `1 + 2 Σ_{k=1}^{n/2} α^k`                  (Lemma 4 / Eq. 15)
/// * odd  `n`:  `1 + 2 Σ_{k=1}^{(n−1)/2} α^k + α^{(n+1)/2}`
///
/// so `y` is the reciprocal of that sum.  For even `n` this equals the paper's
/// `(1 − α) / (1 + α − 2 α^{n/2 + 1})`; the paper elides the odd-`n` case ("slight
/// differences"), which the exact form here covers.  At `α = 1` the value degrades
/// gracefully to the uniform `1 / (n + 1)`.
pub fn em_diagonal(n: usize, alpha: Alpha) -> f64 {
    let a = alpha.value();
    let half = n / 2;
    let mut sum = 1.0;
    if n.is_multiple_of(2) {
        for k in 1..=half {
            sum += 2.0 * a.powi(k as i32);
        }
    } else {
        for k in 1..=half {
            sum += 2.0 * a.powi(k as i32);
        }
        sum += a.powi(half as i32 + 1);
    }
    1.0 / sum
}

/// Lemma 4's upper bound on the diagonal of *any* fair mechanism, as printed in the
/// paper (even-`n` form): `(1 − α) / (1 + α − 2 α^{n/2 + 1})`.
///
/// For even `n` this is exactly [`em_diagonal`].  For odd `n` the printed formula
/// (with a fractional exponent) slightly *understates* what is attainable: the true
/// centre-column bound — and the value EM achieves — is [`em_diagonal`], which is a
/// little larger because the centre column of an odd-size matrix has one fewer
/// doubled power of α.
pub fn fair_diagonal_upper_bound(n: usize, alpha: Alpha) -> f64 {
    let a = alpha.value();
    if (1.0 - a).abs() < 1e-15 {
        return 1.0 / (n as f64 + 1.0);
    }
    (1.0 - a) / (1.0 + a - 2.0 * a.powf(n as f64 / 2.0 + 1.0))
}

/// The rescaled `L0` score of the Explicit Fair Mechanism:
/// `(n+1)/n · (1 − y)` with `y` = [`em_diagonal`] (Section IV-C).
pub fn em_l0(n: usize, alpha: Alpha) -> f64 {
    let y = em_diagonal(n, alpha);
    (n as f64 + 1.0) / n as f64 * (1.0 - y)
}

/// The rescaled `L0` score of the Uniform Mechanism, which is exactly 1 by the choice
/// of rescaling (Section IV-A).
pub fn um_l0() -> f64 {
    1.0
}

/// The truthful-report probability of the binary randomized-response mechanism at
/// privacy level α: `p = 1 / (1 + α)` (Section II-B).
pub fn randomized_response_truth_probability(alpha: Alpha) -> f64 {
    1.0 / (1.0 + alpha.value())
}

/// The truthful-report probability of the n-ary randomized response of Geng et al.:
/// report the truth with probability `p = 1 / (1 + n α)`, otherwise choose one of the
/// `n` other outputs uniformly (each with probability `α p`).
pub fn nary_randomized_response_truth_probability(n: usize, alpha: Alpha) -> f64 {
    1.0 / (1.0 + n as f64 * alpha.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn gm_coefficients_sum_to_column_one() {
        // Column 0 of GM is x * (1 + alpha + ... + alpha^{n-1}) + x*alpha^n ... checked
        // thoroughly in the geometric module; here just check x and y relationships.
        let alpha = a(0.9);
        let x = gm_boundary_coefficient(alpha);
        let y = gm_interior_coefficient(alpha);
        assert!((x - 0.5263157894736842).abs() < 1e-12);
        assert!((y - 0.05263157894736842).abs() < 1e-12);
        assert!((y - (1.0 - 0.9) * x).abs() < 1e-12);
    }

    #[test]
    fn gm_l0_values() {
        assert!((gm_l0(a(0.5)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((gm_l0(a(1.0)) - 1.0).abs() < 1e-12);
        // Monotone increasing in alpha (more privacy, more loss).
        assert!(gm_l0(a(0.9)) > gm_l0(a(0.5)));
    }

    #[test]
    fn lemma_2_and_3_predicates() {
        // alpha = 2/3: threshold 4.
        assert!(gm_satisfies_weak_honesty(4, a(2.0 / 3.0)));
        assert!(!gm_satisfies_weak_honesty(3, a(2.0 / 3.0)));
        // alpha = 10/11: threshold 20.
        assert!(gm_satisfies_weak_honesty(20, a(10.0 / 11.0)));
        assert!(!gm_satisfies_weak_honesty(19, a(10.0 / 11.0)));
        assert!(gm_satisfies_column_monotonicity(a(0.5)));
        assert!(!gm_satisfies_column_monotonicity(a(0.9)));
    }

    #[test]
    fn em_diagonal_matches_lemma_4_for_even_n() {
        for n in [2usize, 4, 8, 16] {
            for alpha in [0.5, 2.0 / 3.0, 0.9, 0.99] {
                let exact = em_diagonal(n, a(alpha));
                let lemma = fair_diagonal_upper_bound(n, a(alpha));
                assert!(
                    (exact - lemma).abs() < 1e-12,
                    "n={n} alpha={alpha}: {exact} vs {lemma}"
                );
            }
        }
    }

    #[test]
    fn em_diagonal_odd_n_exceeds_the_papers_even_form_expression() {
        // For odd n the paper's printed (fractional-exponent) expression is slightly
        // pessimistic; the exact centre-column value achieved by EM is a bit larger.
        for n in [3usize, 5, 7, 11] {
            for alpha in [0.5, 0.9] {
                let exact = em_diagonal(n, a(alpha));
                let printed = fair_diagonal_upper_bound(n, a(alpha));
                assert!(exact >= printed - 1e-12, "n={n} alpha={alpha}");
                // ... but the two agree as n grows (both tend to (1-alpha)/(1+alpha)).
                let asym = (1.0 - alpha) / (1.0 + alpha);
                assert!((em_diagonal(501, a(alpha)) - asym).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn em_diagonal_small_cases_by_hand() {
        // n = 1: y = 1 / (1 + alpha) — randomized response.
        assert!((em_diagonal(1, a(0.5)) - 2.0 / 3.0).abs() < 1e-12);
        // n = 2: y = 1 / (1 + 2 alpha).
        assert!((em_diagonal(2, a(0.5)) - 0.5).abs() < 1e-12);
        // n = 3: y = 1 / (1 + 2 alpha + alpha^2) = 1 / (1 + alpha)^2.
        assert!((em_diagonal(3, a(0.5)) - 1.0 / 2.25).abs() < 1e-12);
        // alpha = 1 degrades to uniform.
        assert!((em_diagonal(5, a(1.0)) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn em_l0_exceeds_gm_l0_by_at_most_the_one_over_n_factor() {
        // Section IV-C / Figure 6: EM's L0 is at most ~(n+1)/n times GM's, and the
        // ratio approaches exactly (n+1)/n as n grows (where y -> (1-alpha)/(1+alpha)).
        let alpha = a(0.9);
        for n in [4usize, 8, 16, 32, 64, 128] {
            let ratio = em_l0(n, alpha) / gm_l0(alpha);
            let factor = (n as f64 + 1.0) / n as f64;
            assert!(ratio >= 1.0 - 1e-12, "EM can never beat GM (n={n})");
            assert!(ratio <= factor + 1e-9, "n={n}: ratio {ratio} vs {factor}");
        }
        let ratio_large = em_l0(256, alpha) / gm_l0(alpha);
        assert!((ratio_large - 257.0 / 256.0).abs() < 1e-3);
    }

    #[test]
    fn um_l0_is_one() {
        assert_eq!(um_l0(), 1.0);
    }

    #[test]
    fn randomized_response_probabilities() {
        assert!((randomized_response_truth_probability(a(1.0)) - 0.5).abs() < 1e-12);
        assert!((randomized_response_truth_probability(a(0.5)) - 2.0 / 3.0).abs() < 1e-12);
        assert!(
            (nary_randomized_response_truth_probability(1, a(0.5))
                - randomized_response_truth_probability(a(0.5)))
            .abs()
                < 1e-12
        );
        assert!((nary_randomized_response_truth_probability(4, a(0.5)) - 1.0 / 3.0).abs() < 1e-12);
    }
}

//! Linear-programming based mechanism design (Sections III and IV).
//!
//! [`formulation`] builds the BASICDP linear program of Eqs. (3)–(6) over the
//! `(n+1)²` probability variables `ρ_{i,j}`, optionally extended with any subset of
//! the seven structural properties (Theorem 2), and [`DesignProblem::solve`] turns
//! the LP optimum back into a validated [`crate::Mechanism`].

pub mod formulation;

#[allow(deprecated)]
pub use formulation::weak_honest_mechanism;
pub use formulation::{
    optimal_constrained, optimal_unconstrained, wm_properties, DesignProblem, DesignSolution,
};

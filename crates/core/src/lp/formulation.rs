//! The BASICDP linear program (Eqs. 3–6) and its property-constrained extensions.
//!
//! Variables are `ρ_{i,j} = Pr[output = i | input = j]`.  The LP minimises
//! `Σ_j w_j Σ_i penalty(i, j) · ρ_{i,j}` subject to
//!
//! * every column summing to one (Eq. 5) with non-negative entries (Eq. 4),
//! * the differential-privacy ratio constraints between adjacent inputs (Eq. 6),
//! * and any requested subset of the structural properties of Section IV-A,
//!   each of which is itself a set of linear (in)equalities (Theorem 2).
//!
//! The upper bound `ρ_{i,j} ≤ 1` of Eq. (4) is implied by non-negativity plus the
//! column-sum equality, so it is omitted to keep the LP smaller.

// The formulation indexes a 2-D grid of LP variables by (row, column) throughout;
// explicit index loops mirror the paper's double subscripts better than iterator
// chains would.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use cpm_simplex::{LinearProgram, Relation, SolveOptions, SolveStats, SolverBackend, VariableId};

use crate::alpha::Alpha;
use crate::error::CoreError;
use crate::matrix::Mechanism;
use crate::objective::{Aggregator, Objective};
use crate::properties::{Property, PropertySet};

/// A constrained mechanism-design problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignProblem {
    /// Group size `n` (the mechanism is `(n+1) × (n+1)`).
    pub n: usize,
    /// Privacy parameter α of Definition 2.
    pub alpha: Alpha,
    /// The objective to minimise.
    pub objective: Objective,
    /// The structural properties to enforce on top of BASICDP.
    pub properties: PropertySet,
    /// Optional *output-side* DP constraint (the extension suggested in the paper's
    /// conclusion): bound the ratio of probabilities between neighbouring *outputs*
    /// within each column by `[β, 1/β]`.  `None` disables it (the paper's setting).
    #[serde(default)]
    pub output_dp: Option<Alpha>,
    /// Which simplex backend [`DesignProblem::solve`] runs.  Defaults to the sparse
    /// revised simplex; the dense tableau remains selectable for differential
    /// testing and ablations.
    #[serde(default)]
    pub backend: SolverBackend,
    /// Optional warm-start hint: the [`DesignSolution::optimal_basis`] of an
    /// **identically shaped** problem (same `n`, properties, objective family —
    /// only `alpha` may differ), used to seed a dual-simplex re-solve that
    /// skips Phase 1 and most of Phase 2.  A hint that does not fit (or is
    /// dual-infeasible under this problem's coefficients) silently falls back
    /// to the cold primal path — a warm start can never change the answer,
    /// only the pivot count.  Ignored when the caller's explicit
    /// [`SolveOptions::warm_basis`] is already set.
    #[serde(default)]
    pub warm_basis: Option<Vec<usize>>,
    /// Seed otherwise-cold solves from the closed-form **Geometric Mechanism
    /// crash basis** (on by default).  Theorem 3 makes GM the exact optimum of
    /// the unconstrained `L0` program, so the crash collapses that solve to a
    /// single factorisation; on constrained problems the GM basis is still
    /// dual-feasible whenever the objective is the one GM optimises, and the
    /// dual-simplex cleanup drives out the property violations instead of a
    /// full cold solve.  A crash seed that does not fit (other objectives,
    /// presolve reductions, degenerate tightness) is rejected by the solver's
    /// seed validation and the solve proceeds cold — the flag can change pivot
    /// counts, never answers.  Disable for solver benchmarking ablations.
    #[serde(default = "default_crash_seed")]
    pub crash_seed: bool,
}

fn default_crash_seed() -> bool {
    true
}

/// The result of solving a [`DesignProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSolution {
    /// The optimal mechanism (column-renormalised to remove LP round-off).
    pub mechanism: Mechanism,
    /// The optimal objective value reported by the LP (unrescaled, Definition 3).
    pub objective_value: f64,
    /// Solver statistics (iteration counts, artificial variables, ...),
    /// including which [`SolverBackend`] produced the solution.
    pub solver_stats: SolveStats,
    /// The optimal standard-form basis of the LP solve, when the solver could
    /// report one — the seed for [`DesignProblem::warm_basis`] on a
    /// perturbed re-solve (an α sweep within one problem family).
    pub optimal_basis: Option<Vec<usize>>,
}

impl DesignProblem {
    /// A BASICDP-only problem (Section III) under the given objective.
    pub fn unconstrained(n: usize, alpha: Alpha, objective: Objective) -> Self {
        DesignProblem {
            n,
            alpha,
            objective,
            properties: PropertySet::empty(),
            output_dp: None,
            backend: SolverBackend::default(),
            warm_basis: None,
            crash_seed: true,
        }
    }

    /// A fully-specified constrained problem (Section IV).
    pub fn constrained(
        n: usize,
        alpha: Alpha,
        objective: Objective,
        properties: PropertySet,
    ) -> Self {
        DesignProblem {
            n,
            alpha,
            objective,
            properties,
            output_dp: None,
            backend: SolverBackend::default(),
            warm_basis: None,
            crash_seed: true,
        }
    }

    /// Additionally require the output-side DP constraint with parameter `beta`
    /// (Section VI's suggested extension): within every column, neighbouring outputs
    /// must have probabilities within a factor `[β, 1/β]` of each other.
    #[must_use]
    pub fn with_output_dp(mut self, beta: Alpha) -> Self {
        self.output_dp = Some(beta);
        self
    }

    /// Select the simplex backend used by [`DesignProblem::solve`].
    #[must_use]
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Seed the solve from a neighbouring problem's
    /// [`DesignSolution::optimal_basis`] (see [`DesignProblem::warm_basis`]).
    #[must_use]
    pub fn with_warm_basis(mut self, basis: Option<Vec<usize>>) -> Self {
        self.warm_basis = basis;
        self
    }

    /// Enable or disable the closed-form crash seed for cold solves (see
    /// [`DesignProblem::crash_seed`]).
    #[must_use]
    pub fn with_crash_seed(mut self, crash_seed: bool) -> Self {
        self.crash_seed = crash_seed;
        self
    }

    /// Build the linear program and the `ρ` variable grid (`vars[i][j]`).
    ///
    /// Exposed so that callers (benches, tests) can inspect LP sizes; most users
    /// should call [`DesignProblem::solve`].
    pub fn build_lp(&self) -> Result<(LinearProgram, Vec<Vec<VariableId>>), CoreError> {
        if self.n == 0 {
            return Err(CoreError::InvalidGroupSize { value: self.n });
        }
        let n = self.n;
        let dim = n + 1;
        let weights = self.objective.prior.weights(n)?;
        let alpha = self.alpha.value();

        let mut lp = LinearProgram::minimize();
        // vars[i][j] = rho_{i,j}.
        let mut vars: Vec<Vec<VariableId>> = Vec::with_capacity(dim);
        for i in 0..dim {
            let mut row = Vec::with_capacity(dim);
            for j in 0..dim {
                row.push(lp.add_variable(format!("rho_{i}_{j}")));
            }
            vars.push(row);
        }

        // Objective (Eq. 3).
        match self.objective.aggregator {
            Aggregator::Sum => {
                for j in 0..dim {
                    for i in 0..dim {
                        let coefficient = weights[j] * self.objective.loss.penalty(i, j);
                        if coefficient != 0.0 {
                            lp.set_objective_coefficient(vars[i][j], coefficient);
                        }
                    }
                }
            }
            Aggregator::Max => {
                // Epigraph formulation: minimise t with t >= per-column loss.
                let t = lp.add_variable("t_max");
                lp.set_objective_coefficient(t, 1.0);
                for j in 0..dim {
                    let mut terms: Vec<(VariableId, f64)> = vec![(t, 1.0)];
                    for i in 0..dim {
                        let coefficient = self.objective.loss.penalty(i, j);
                        if coefficient != 0.0 {
                            terms.push((vars[i][j], -coefficient));
                        }
                    }
                    lp.add_constraint(terms, Relation::GreaterEq, 0.0);
                }
            }
        }

        // Column stochasticity (Eq. 5).  Non-negativity (Eq. 4) is the default
        // variable bound.  Rows are streamed straight into the LP's term arena —
        // no per-row `Vec` is materialised anywhere in this builder.
        for j in 0..dim {
            lp.add_constraint((0..dim).map(|i| (vars[i][j], 1.0)), Relation::Equal, 1.0);
        }

        // Differential privacy (Eq. 6): rho_{i,j} >= alpha * rho_{i,j+1} and vice versa.
        for i in 0..dim {
            for j in 0..n {
                lp.add_constraint(
                    [(vars[i][j], 1.0), (vars[i][j + 1], -alpha)],
                    Relation::GreaterEq,
                    0.0,
                );
                lp.add_constraint(
                    [(vars[i][j + 1], 1.0), (vars[i][j], -alpha)],
                    Relation::GreaterEq,
                    0.0,
                );
            }
        }

        // Structural properties (Section IV-A), each as linear constraints.
        for property in self.properties.iter() {
            add_property_constraints(&mut lp, &vars, n, property);
        }

        // Optional output-side DP (the paper's suggested extension): within each
        // column j, rho_{i,j} >= beta * rho_{i+1,j} and vice versa.
        if let Some(beta) = self.output_dp {
            let b = beta.value();
            for j in 0..dim {
                for i in 0..n {
                    lp.add_constraint(
                        [(vars[i][j], 1.0), (vars[i + 1][j], -b)],
                        Relation::GreaterEq,
                        0.0,
                    );
                    lp.add_constraint(
                        [(vars[i + 1][j], 1.0), (vars[i][j], -b)],
                        Relation::GreaterEq,
                        0.0,
                    );
                }
            }
        }

        Ok((lp, vars))
    }

    /// Solver options tuned for this problem instance:
    /// [`SolveOptions::tuned`] sized for the `(n+1)²`-variable LP (pivot
    /// budget that never trips the generic iteration limit at n = 128 and
    /// beyond, projected steepest-edge pricing, and `LpForm::Auto`) plus the
    /// problem's [`DesignProblem::backend`] choice.
    ///
    /// `LpForm::Auto` routes the mechanism LPs through the **dual form** once
    /// they are large enough to care (≥ 512 rows, i.e. n ≥ 16 with weak
    /// honesty, and ≥ 1.5x more rows than columns, which every mechanism LP
    /// satisfies at ~2x): the dual basis is half the size and the
    /// nonnegative mechanism costs make phase 1 vanish.  Small or square
    /// programs keep the primal path; [`cpm_simplex::SolveStats::form`]
    /// reports which form actually ran.
    pub fn recommended_options(&self) -> SolveOptions {
        let dim = self.n + 1;
        SolveOptions::tuned(dim * dim).with_backend(self.backend)
    }

    /// Solve the design problem with recommended solver options (honouring the
    /// problem's [`DesignProblem::backend`] choice; see
    /// [`DesignProblem::recommended_options`]).
    pub fn solve(&self) -> Result<DesignSolution, CoreError> {
        self.solve_with(&self.recommended_options())
    }

    /// Solve the design problem with explicit solver options.  The problem's
    /// own [`DesignProblem::warm_basis`] hint is applied unless the options
    /// already carry one.
    pub fn solve_with(&self, options: &SolveOptions) -> Result<DesignSolution, CoreError> {
        let (lp, vars) = self.build_lp()?;
        let seed = if options.warm_basis.is_some() {
            None
        } else if self.warm_basis.is_some() {
            self.warm_basis.clone()
        } else if self.crash_seed {
            self.geometric_crash_basis(&lp, &vars)
        } else {
            None
        };
        let solution = if let Some(seed) = seed {
            if options.warm_basis.is_none() && self.warm_basis.is_none() {
                cpm_obs::counter!("cpm_lp_crash_seeded_total").inc();
            }
            let mut seeded = options.clone();
            seeded.warm_basis = Some(seed);
            lp.solve_with(&seeded)?
        } else {
            lp.solve_with(options)?
        };
        let dim = self.n + 1;

        // Extract the matrix, clamping tiny negative round-off and renormalising each
        // column so the result is exactly column-stochastic.
        let mut entries = vec![0.0; dim * dim];
        for (i, row) in vars.iter().enumerate() {
            for (j, &var) in row.iter().enumerate() {
                entries[i * dim + j] = solution.value(var).max(0.0);
            }
        }
        for j in 0..dim {
            let total: f64 = (0..dim).map(|i| entries[i * dim + j]).sum();
            if (total - 1.0).abs() > 1e-4 {
                return Err(CoreError::DegenerateSolution {
                    reason: format!("column {j} sums to {total} after solving"),
                });
            }
            for i in 0..dim {
                entries[i * dim + j] /= total;
            }
        }
        let mechanism = Mechanism::from_row_major_unchecked(self.n, entries);
        mechanism.validate(1e-7)?;

        Ok(DesignSolution {
            mechanism,
            objective_value: solution.objective_value,
            solver_stats: solution.stats,
            optimal_basis: solution.optimal_basis,
        })
    }

    /// The closed-form crash seed for this problem: the active set implied by
    /// the Geometric Mechanism at this `(n, α)`, expressed as a standard-form
    /// basis via [`cpm_simplex::crash_basis`] (see
    /// [`DesignProblem::crash_seed`] for when it helps and how it can fail
    /// safely).
    fn geometric_crash_basis(
        &self,
        lp: &LinearProgram,
        vars: &[Vec<VariableId>],
    ) -> Option<Vec<usize>> {
        let gm = crate::mechanisms::GeometricMechanism::new(self.n, self.alpha).ok()?;
        let gm = gm.matrix();
        let dim = self.n + 1;
        let mut values = vec![0.0; lp.num_variables()];
        for i in 0..dim {
            for j in 0..dim {
                values[vars[i][j].index()] = gm.prob(i, j);
            }
        }
        // The epigraph variable of a `Max` aggregator sits at the largest
        // per-column loss of the conjectured mechanism.
        if let Aggregator::Max = self.objective.aggregator {
            let t = (0..dim)
                .map(|j| {
                    (0..dim)
                        .map(|i| self.objective.loss.penalty(i, j) * gm.prob(i, j))
                        .sum::<f64>()
                })
                .fold(0.0f64, f64::max);
            if let Some(value) = values.get_mut(dim * dim) {
                *value = t;
            }
        }
        cpm_simplex::crash_basis(lp, &values)
    }
}

/// Append the linear constraints encoding one structural property (Theorem 2).
fn add_property_constraints(
    lp: &mut LinearProgram,
    vars: &[Vec<VariableId>],
    n: usize,
    property: Property,
) {
    let dim = n + 1;
    match property {
        // RH (Eq. 7): rho_{i,i} >= rho_{i,j} for all j != i.
        Property::RowHonesty => {
            for i in 0..dim {
                for j in 0..dim {
                    if i != j {
                        lp.add_constraint(
                            [(vars[i][i], 1.0), (vars[i][j], -1.0)],
                            Relation::GreaterEq,
                            0.0,
                        );
                    }
                }
            }
        }
        // RM (Eq. 8): within row i, entries are non-increasing moving away from the
        // diagonal: rho_{i,j-1} <= rho_{i,j} for j <= i and rho_{i,j+1} <= rho_{i,j}
        // for j >= i.
        Property::RowMonotonicity => {
            for i in 0..dim {
                for j in 1..=i {
                    lp.add_constraint(
                        [(vars[i][j], 1.0), (vars[i][j - 1], -1.0)],
                        Relation::GreaterEq,
                        0.0,
                    );
                }
                for j in i..n {
                    lp.add_constraint(
                        [(vars[i][j], 1.0), (vars[i][j + 1], -1.0)],
                        Relation::GreaterEq,
                        0.0,
                    );
                }
            }
        }
        // CH (Eq. 9): rho_{j,j} >= rho_{i,j} for all i != j.
        Property::ColumnHonesty => {
            for j in 0..dim {
                for i in 0..dim {
                    if i != j {
                        lp.add_constraint(
                            [(vars[j][j], 1.0), (vars[i][j], -1.0)],
                            Relation::GreaterEq,
                            0.0,
                        );
                    }
                }
            }
        }
        // CM (Eq. 10): within column j, entries are non-increasing moving away from
        // the diagonal.
        Property::ColumnMonotonicity => {
            for j in 0..dim {
                for i in 1..=j {
                    lp.add_constraint(
                        [(vars[i][j], 1.0), (vars[i - 1][j], -1.0)],
                        Relation::GreaterEq,
                        0.0,
                    );
                }
                for i in j..n {
                    lp.add_constraint(
                        [(vars[i][j], 1.0), (vars[i + 1][j], -1.0)],
                        Relation::GreaterEq,
                        0.0,
                    );
                }
            }
        }
        // F (Eq. 11): all diagonal entries equal.
        Property::Fairness => {
            for i in 1..dim {
                lp.add_constraint(
                    [(vars[i][i], 1.0), (vars[0][0], -1.0)],
                    Relation::Equal,
                    0.0,
                );
            }
        }
        // WH (Eq. 13): diagonal entries at least 1/(n+1).
        Property::WeakHonesty => {
            let bound = 1.0 / dim as f64;
            for i in 0..dim {
                lp.add_constraint([(vars[i][i], 1.0)], Relation::GreaterEq, bound);
            }
        }
        // S (Eq. 14): rho_{i,j} = rho_{n-i,n-j}; only half the pairs are needed.
        Property::Symmetry => {
            for i in 0..dim {
                for j in 0..dim {
                    let (oi, oj) = (n - i, n - j);
                    if (i, j) < (oi, oj) {
                        lp.add_constraint(
                            [(vars[i][j], 1.0), (vars[oi][oj], -1.0)],
                            Relation::Equal,
                            0.0,
                        );
                    }
                }
            }
        }
    }
}

/// The unconstrained (BASICDP-only) optimal mechanism for the given objective — the
/// Ghosh et al. setting of Section III.  For `L0` this is the Geometric Mechanism
/// (Theorem 3).
pub fn optimal_unconstrained(
    n: usize,
    alpha: Alpha,
    objective: Objective,
) -> Result<DesignSolution, CoreError> {
    DesignProblem::unconstrained(n, alpha, objective).solve()
}

/// The optimal mechanism satisfying a subset of the structural properties
/// (Theorem 2).
pub fn optimal_constrained(
    n: usize,
    alpha: Alpha,
    objective: Objective,
    properties: PropertySet,
) -> Result<DesignSolution, CoreError> {
    DesignProblem::constrained(n, alpha, objective, properties).solve()
}

/// The property set defining the paper's WM (Section V-A: "From now on, we use
/// WM to refer to the mechanism with WH, RM and CM properties").
pub fn wm_properties() -> PropertySet {
    PropertySet::empty()
        .with(Property::WeakHonesty)
        .with(Property::RowMonotonicity)
        .with(Property::ColumnMonotonicity)
}

/// The paper's WM as a raw LP solution.
#[deprecated(
    since = "0.1.0",
    note = "use `MechanismSpec::new(n, alpha).properties(wm_properties()).build()?.design()?` \
            for the designed artifact, or `optimal_constrained(n, alpha, Objective::l0(), \
            wm_properties())` for the raw LP solution"
)]
pub fn weak_honest_mechanism(n: usize, alpha: Alpha) -> Result<DesignSolution, CoreError> {
    optimal_constrained(n, alpha, Objective::l0(), wm_properties())
}

/// Convenience alias for [`LossKind`] users: build the standard `L0` design problem
/// for a property subset.
pub fn l0_problem(n: usize, alpha: Alpha, properties: PropertySet) -> DesignProblem {
    DesignProblem::constrained(n, alpha, Objective::l0(), properties)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;
    use crate::mechanisms::{ExplicitFairMechanism, GeometricMechanism};
    use crate::objective::{rescaled_l0, LossKind, Prior};

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    /// A pre-PR-7 serialized `DesignProblem` carries no `crash_seed` field;
    /// it must deserialize with the seed on (the production default), not
    /// `bool::default()`.
    #[test]
    fn missing_crash_seed_field_defaults_to_on() {
        let problem = DesignProblem::unconstrained(4, a(0.62), Objective::l0());
        let mut json = serde_json::to_string(&problem).unwrap();
        assert!(json.contains("\"crash_seed\":true"));
        json = json.replace(",\"crash_seed\":true", "");
        let back: DesignProblem = serde_json::from_str(&json).unwrap();
        assert!(back.crash_seed);
        assert_eq!(back, problem);
    }

    #[test]
    fn lp_sizes_are_as_expected() {
        let problem = DesignProblem::unconstrained(4, a(0.62), Objective::l0());
        let (lp, vars) = problem.build_lp().unwrap();
        assert_eq!(vars.len(), 5);
        assert_eq!(lp.num_variables(), 25);
        // 5 column sums + 2 * 5 * 4 DP constraints.
        assert_eq!(lp.num_constraints(), 5 + 40);

        let constrained = DesignProblem::constrained(
            4,
            a(0.62),
            Objective::l0(),
            PropertySet::empty().with(Property::WeakHonesty),
        );
        let (lp2, _) = constrained.build_lp().unwrap();
        assert_eq!(lp2.num_constraints(), 45 + 5);
    }

    #[test]
    fn unconstrained_l0_recovers_the_geometric_mechanism() {
        // Theorem 3: GM is the unique optimal BASICDP mechanism for L0.
        for n in [2usize, 3, 5] {
            for alpha in [0.5, 0.62, 0.9] {
                let solution =
                    optimal_unconstrained(n, a(alpha), Objective::l0()).expect("solve ok");
                let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
                let lp_l0 = rescaled_l0(&solution.mechanism);
                assert!(
                    (lp_l0 - gm.l0_score()).abs() < 1e-6,
                    "n={n} alpha={alpha}: LP {lp_l0} vs closed form {}",
                    gm.l0_score()
                );
                // Uniqueness: the matrices should agree entrywise.
                for i in 0..=n {
                    for j in 0..=n {
                        assert!(
                            (solution.mechanism.prob(i, j) - gm.matrix().prob(i, j)).abs() < 1e-5,
                            "n={n} alpha={alpha} cell ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fully_constrained_l0_matches_the_explicit_fair_mechanism_cost() {
        // Theorem 4: EM is L0-optimal among mechanisms with all properties, so the LP
        // optimum with all properties must equal EM's closed-form cost.
        for n in [2usize, 3, 4, 5] {
            for alpha in [0.62, 0.9] {
                let solution =
                    optimal_constrained(n, a(alpha), Objective::l0(), PropertySet::all())
                        .expect("solve ok");
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                let lp_l0 = rescaled_l0(&solution.mechanism);
                assert!(
                    (lp_l0 - em.l0_score()).abs() < 1e-6,
                    "n={n} alpha={alpha}: LP {lp_l0} vs EM {}",
                    em.l0_score()
                );
                assert!(PropertySet::all().all_hold(&solution.mechanism, 1e-6));
            }
        }
    }

    #[test]
    fn constrained_solutions_satisfy_dp_and_requested_properties() {
        let properties = PropertySet::empty()
            .with(Property::WeakHonesty)
            .with(Property::ColumnMonotonicity);
        let solution =
            optimal_constrained(5, a(0.76), Objective::l0(), properties).expect("solve ok");
        assert!(solution.mechanism.satisfies_dp(a(0.76), 1e-6));
        assert!(properties.all_hold(&solution.mechanism, 1e-6));
    }

    #[test]
    fn weak_honest_mechanism_cost_is_sandwiched_between_gm_and_em() {
        // Section IV-D: L0(GM) <= L0(WM) <= L0(EM).
        for n in [3usize, 5, 7] {
            for alpha in [0.76, 0.9] {
                let wm = optimal_constrained(n, a(alpha), Objective::l0(), wm_properties())
                    .expect("solve ok");
                let wm_l0 = rescaled_l0(&wm.mechanism);
                let gm_l0 = closed_form::gm_l0(a(alpha));
                let em_l0 = closed_form::em_l0(n, a(alpha));
                assert!(wm_l0 + 1e-6 >= gm_l0, "n={n} alpha={alpha}");
                assert!(wm_l0 <= em_l0 + 1e-6, "n={n} alpha={alpha}");
            }
        }
    }

    #[test]
    fn l2_unconstrained_can_collapse_to_a_constant_output() {
        // Figure 1: for L2 the unconstrained "optimal" mechanism ignores its input.
        // For n = 7 and alpha = 0.62 it always reports 2 (or the mirror image 5) with
        // high probability; at minimum it must have several all-zero rows.
        let solution = optimal_unconstrained(7, a(0.62), Objective::l2()).expect("solve ok");
        let zero_rows = solution.mechanism.zero_rows(1e-7);
        assert!(
            !zero_rows.is_empty(),
            "expected output gaps in the unconstrained L2 mechanism"
        );
    }

    #[test]
    fn constrained_l2_has_no_gaps() {
        // Figure 2: adding the properties eliminates the gaps.
        let solution =
            optimal_constrained(5, a(0.62), Objective::l2(), PropertySet::all()).expect("solve ok");
        assert!(solution.mechanism.zero_rows(1e-9).is_empty());
        assert!(solution.mechanism.min_entry() > 0.0);
    }

    #[test]
    fn minimax_objective_is_supported() {
        let problem = DesignProblem {
            n: 3,
            alpha: a(0.7),
            objective: Objective {
                loss: LossKind::ZeroOne,
                prior: Prior::Uniform,
                aggregator: Aggregator::Max,
            },
            properties: PropertySet::empty().with(Property::Symmetry),
            output_dp: None,
            backend: SolverBackend::default(),
            warm_basis: None,
            crash_seed: true,
        };
        let solution = problem.solve().expect("solve ok");
        // The minimax L0 loss of any DP mechanism is at least the uniform-column
        // loss; sanity-check the value is in (0, 1).
        assert!(solution.objective_value > 0.0 && solution.objective_value < 1.0);
        assert!(solution.mechanism.satisfies_dp(a(0.7), 1e-6));
    }

    #[test]
    fn output_dp_extension_yields_doubly_smooth_mechanisms() {
        // The paper's concluding extension: also bound the ratio between neighbouring
        // outputs.  GM badly violates this for alpha > 1/2 (its boundary rows spike),
        // so the doubly-constrained optimum must cost strictly more than GM but can
        // never exceed EM+uniformity... at minimum it must satisfy both checks.
        let alpha = a(0.9);
        let n = 4;
        let problem = DesignProblem::unconstrained(n, alpha, Objective::l0()).with_output_dp(alpha);
        let solution = problem
            .solve()
            .expect("output-DP LP must solve (UM is feasible)");
        assert!(solution.mechanism.satisfies_dp(alpha, 1e-6));
        assert!(solution.mechanism.satisfies_output_dp(alpha, 1e-6));
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        assert!(!gm.matrix().satisfies_output_dp(alpha, 1e-6));
        assert!(rescaled_l0(&solution.mechanism) >= gm.l0_score() - 1e-6);
        assert!(rescaled_l0(&solution.mechanism) <= 1.0 + 1e-9);

        // Combining with fairness still works (UM witnesses feasibility).
        let fair = DesignProblem::constrained(
            n,
            alpha,
            Objective::l0(),
            PropertySet::empty().with(Property::Fairness),
        )
        .with_output_dp(alpha)
        .solve()
        .expect("fair + output-DP LP must solve");
        assert!(Property::Fairness.holds(&fair.mechanism, 1e-6));
        assert!(fair.mechanism.satisfies_output_dp(alpha, 1e-6));
    }

    #[test]
    fn recommended_options_scale_the_pivot_budget_with_n() {
        let small = DesignProblem::unconstrained(4, a(0.62), Objective::l0());
        assert_eq!(small.recommended_options().max_iterations, 500_000);
        assert_eq!(small.recommended_options().backend, small.backend);
        let large = DesignProblem::unconstrained(128, a(0.62), Objective::l0());
        assert_eq!(large.recommended_options().max_iterations, 60 * 129 * 129);
    }

    #[test]
    fn invalid_group_size_is_rejected() {
        let problem = DesignProblem::unconstrained(0, a(0.5), Objective::l0());
        assert!(matches!(
            problem.build_lp(),
            Err(CoreError::InvalidGroupSize { value: 0 })
        ));
    }

    #[test]
    fn fairness_plus_weak_honesty_is_feasible_even_when_gm_is_not_honest() {
        // For alpha = 0.9, n = 2 GM badly violates weak honesty (Example 1), but the
        // constrained LP must still find a fair, weakly honest mechanism (UM witnesses
        // feasibility; EM is the optimum).
        let properties = PropertySet::empty()
            .with(Property::Fairness)
            .with(Property::WeakHonesty);
        let solution =
            optimal_constrained(2, a(0.9), Objective::l0(), properties).expect("solve ok");
        assert!(properties.all_hold(&solution.mechanism, 1e-6));
        let em = ExplicitFairMechanism::new(2, a(0.9)).unwrap();
        assert!((rescaled_l0(&solution.mechanism) - em.l0_score()).abs() < 1e-6);
    }
}

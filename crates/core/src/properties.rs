//! The seven structural properties of Section IV-A and their implication lattice.
//!
//! Each property is a set of linear inequalities (or equalities) over the entries of
//! the mechanism matrix, so any subset can be added to the design LP (Theorem 2).
//! The checkers here evaluate a property on a concrete [`Mechanism`] with an absolute
//! tolerance; the implication lattice mirrors the reductions used in Section IV-D to
//! collapse the 128 possible property combinations to a handful of behaviours.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::matrix::Mechanism;

/// One of the seven structural properties of Section IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Property {
    /// RH (Eq. 7): `Pr[i|i] >= Pr[i|j]` — row `i` peaks at the diagonal.
    RowHonesty,
    /// RM (Eq. 8): entries of row `i` are non-increasing moving away from the diagonal.
    RowMonotonicity,
    /// CH (Eq. 9): `Pr[j|j] >= Pr[i|j]` — the truth is the most likely single output.
    ColumnHonesty,
    /// CM (Eq. 10): entries of column `j` are non-increasing moving away from the diagonal.
    ColumnMonotonicity,
    /// F (Eq. 11): the probability of reporting the truth is the same for every input.
    Fairness,
    /// WH (Eq. 13): `Pr[i|i] >= 1/(n+1)` — at least as honest as uniform guessing.
    WeakHonesty,
    /// S (Eq. 14): centro-symmetry, `Pr[i|j] = Pr[n−i|n−j]`.
    Symmetry,
}

impl Property {
    /// All seven properties, in the paper's presentation order.
    pub const ALL: [Property; 7] = [
        Property::RowHonesty,
        Property::RowMonotonicity,
        Property::ColumnHonesty,
        Property::ColumnMonotonicity,
        Property::Fairness,
        Property::WeakHonesty,
        Property::Symmetry,
    ];

    /// The short name used in the paper (RH, RM, CH, CM, F, WH, S).
    pub fn short_name(self) -> &'static str {
        match self {
            Property::RowHonesty => "RH",
            Property::RowMonotonicity => "RM",
            Property::ColumnHonesty => "CH",
            Property::ColumnMonotonicity => "CM",
            Property::Fairness => "F",
            Property::WeakHonesty => "WH",
            Property::Symmetry => "S",
        }
    }

    /// Parse a short name (case-insensitive).
    pub fn from_short_name(name: &str) -> Option<Property> {
        match name.to_ascii_uppercase().as_str() {
            "RH" => Some(Property::RowHonesty),
            "RM" => Some(Property::RowMonotonicity),
            "CH" => Some(Property::ColumnHonesty),
            "CM" => Some(Property::ColumnMonotonicity),
            "F" => Some(Property::Fairness),
            "WH" => Some(Property::WeakHonesty),
            "S" => Some(Property::Symmetry),
            _ => None,
        }
    }

    /// Check whether the property holds for `mechanism` within an absolute `tolerance`.
    pub fn holds(self, mechanism: &Mechanism, tolerance: f64) -> bool {
        let dim = mechanism.dim();
        let n = mechanism.group_size();
        match self {
            Property::RowHonesty => (0..dim).all(|i| {
                let diag = mechanism.prob(i, i);
                (0..dim).all(|j| mechanism.prob(i, j) <= diag + tolerance)
            }),
            Property::RowMonotonicity => (0..dim).all(|i| {
                // Towards smaller inputs: Pr[i|j-1] <= Pr[i|j] for 1 <= j <= i.
                (1..=i).all(|j| mechanism.prob(i, j - 1) <= mechanism.prob(i, j) + tolerance)
                    // Away from the diagonal on the right: Pr[i|j+1] <= Pr[i|j] for i <= j < n.
                    && (i..n).all(|j| mechanism.prob(i, j + 1) <= mechanism.prob(i, j) + tolerance)
            }),
            Property::ColumnHonesty => (0..dim).all(|j| {
                let diag = mechanism.prob(j, j);
                (0..dim).all(|i| mechanism.prob(i, j) <= diag + tolerance)
            }),
            Property::ColumnMonotonicity => (0..dim).all(|j| {
                (1..=j).all(|i| mechanism.prob(i - 1, j) <= mechanism.prob(i, j) + tolerance)
                    && (j..n).all(|i| mechanism.prob(i + 1, j) <= mechanism.prob(i, j) + tolerance)
            }),
            Property::Fairness => {
                let y = mechanism.prob(0, 0);
                (1..dim).all(|i| (mechanism.prob(i, i) - y).abs() <= tolerance)
            }
            Property::WeakHonesty => {
                let bound = 1.0 / dim as f64;
                (0..dim).all(|i| mechanism.prob(i, i) + tolerance >= bound)
            }
            Property::Symmetry => (0..dim).all(|i| {
                (0..dim).all(|j| {
                    (mechanism.prob(i, j) - mechanism.prob(n - i, n - j)).abs() <= tolerance
                })
            }),
        }
    }

    /// Properties directly implied by this one (Section IV-A / IV-D):
    /// RM ⇒ RH, CM ⇒ CH, CH ⇒ WH.
    pub fn direct_implications(self) -> &'static [Property] {
        match self {
            Property::RowMonotonicity => &[Property::RowHonesty],
            Property::ColumnMonotonicity => &[Property::ColumnHonesty],
            Property::ColumnHonesty => &[Property::WeakHonesty],
            _ => &[],
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

/// A set of requested structural properties.
///
/// Backed by a bitmask so sets are cheap to copy and compare; iteration follows the
/// paper's presentation order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PropertySet(u8);

impl PropertySet {
    /// The empty set (plain BASICDP design, Section III).
    pub const fn empty() -> Self {
        PropertySet(0)
    }

    /// The set of all seven properties.
    pub fn all() -> Self {
        Property::ALL.iter().copied().collect()
    }

    /// The raw backing bitmask — bit order `RH, RM, CH, CM, F, WH, S` from the
    /// least-significant bit.  This is the fixed-size wire encoding used by
    /// the `cpm-collect` binary report format.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuild a set from its [`bits`](Self::bits) encoding; `None` if any bit
    /// beyond the seven defined properties is set.
    pub const fn from_bits(bits: u8) -> Option<Self> {
        if bits < 1 << 7 {
            Some(PropertySet(bits))
        } else {
            None
        }
    }

    fn bit(property: Property) -> u8 {
        match property {
            Property::RowHonesty => 1,
            Property::RowMonotonicity => 1 << 1,
            Property::ColumnHonesty => 1 << 2,
            Property::ColumnMonotonicity => 1 << 3,
            Property::Fairness => 1 << 4,
            Property::WeakHonesty => 1 << 5,
            Property::Symmetry => 1 << 6,
        }
    }

    /// Insert a property, returning the updated set (builder style).
    #[must_use]
    pub fn with(mut self, property: Property) -> Self {
        self.insert(property);
        self
    }

    /// Insert a property in place.
    pub fn insert(&mut self, property: Property) {
        self.0 |= Self::bit(property);
    }

    /// Remove a property in place.
    pub fn remove(&mut self, property: Property) {
        self.0 &= !Self::bit(property);
    }

    /// Whether the set contains a property.
    pub fn contains(self, property: Property) -> bool {
        self.0 & Self::bit(property) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of properties in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over the members in presentation order.
    pub fn iter(self) -> impl Iterator<Item = Property> {
        Property::ALL.into_iter().filter(move |&p| self.contains(p))
    }

    /// The implication closure of the set: repeatedly add every property directly
    /// implied by a member (RM ⇒ RH, CM ⇒ CH ⇒ WH).  Fairness combined with a row
    /// (column) honesty property implies the corresponding column (row) honesty
    /// property, as argued below Eq. (11).
    #[must_use]
    pub fn closure(self) -> Self {
        let mut closed = self;
        loop {
            let mut next = closed;
            for property in closed.iter() {
                for &implied in property.direct_implications() {
                    next.insert(implied);
                }
            }
            if next.contains(Property::Fairness) {
                if next.contains(Property::RowHonesty) {
                    next.insert(Property::ColumnHonesty);
                }
                if next.contains(Property::ColumnHonesty) {
                    next.insert(Property::RowHonesty);
                }
            }
            if next == closed {
                return closed;
            }
            closed = next;
        }
    }

    /// Whether every property in the set holds for `mechanism` within `tolerance`.
    pub fn all_hold(self, mechanism: &Mechanism, tolerance: f64) -> bool {
        self.iter().all(|p| p.holds(mechanism, tolerance))
    }

    /// The subset of properties in this set that *fail* for `mechanism`.
    pub fn violations(self, mechanism: &Mechanism, tolerance: f64) -> Vec<Property> {
        self.iter()
            .filter(|p| !p.holds(mechanism, tolerance))
            .collect()
    }

    /// All 128 possible property subsets (used by the design-space collapse experiment).
    pub fn power_set() -> Vec<PropertySet> {
        (0u8..128).map(PropertySet).collect()
    }
}

impl FromIterator<Property> for PropertySet {
    fn from_iter<T: IntoIterator<Item = Property>>(iter: T) -> Self {
        let mut set = PropertySet::empty();
        for property in iter {
            set.insert(property);
        }
        set
    }
}

impl std::str::FromStr for PropertySet {
    type Err = crate::error::CoreError;

    /// Parse a property list: the paper's short names separated by `+`, `,`, or
    /// whitespace, case-insensitive, with optional surrounding braces — so both
    /// the wire form `"WH+CM"` and the [`fmt::Display`] form `"{WH, CM}"` round
    /// trip.  The empty string is the empty set.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let trimmed = text.trim();
        let trimmed = trimmed
            .strip_prefix('{')
            .and_then(|rest| rest.strip_suffix('}'))
            .unwrap_or(trimmed);
        let mut set = PropertySet::empty();
        for token in trimmed
            .split(|c: char| c == '+' || c == ',' || c.is_whitespace())
            .filter(|t| !t.is_empty())
        {
            match Property::from_short_name(token) {
                Some(property) => set.insert(property),
                None => {
                    return Err(crate::error::CoreError::UnknownProperty {
                        token: token.to_string(),
                    })
                }
            }
        }
        Ok(set)
    }
}

impl fmt::Display for PropertySet {
    /// Prints `{RH, CM}`-style sets using the paper's short names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for property in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", property.short_name())?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Report on which of the seven properties a mechanism satisfies (used by the
/// Figure 6 table binary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyReport {
    /// Whether each of the seven properties holds, in [`Property::ALL`] order.
    pub satisfied: Vec<(String, bool)>,
}

impl PropertyReport {
    /// Evaluate all seven properties for a mechanism.
    pub fn evaluate(mechanism: &Mechanism, tolerance: f64) -> Self {
        PropertyReport {
            satisfied: Property::ALL
                .iter()
                .map(|p| (p.short_name().to_string(), p.holds(mechanism, tolerance)))
                .collect(),
        }
    }

    /// Whether a property holds according to this report.
    pub fn holds(&self, property: Property) -> bool {
        self.satisfied
            .iter()
            .find(|(name, _)| name == property.short_name())
            .map(|(_, ok)| *ok)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mechanism;

    fn uniform(n: usize) -> Mechanism {
        Mechanism::from_fn(n, |_, _| 1.0 / (n as f64 + 1.0)).unwrap()
    }

    /// The n = 2 Geometric Mechanism from Example 1 (alpha = 0.9), built explicitly.
    fn gm_like_n2() -> Mechanism {
        let alpha: f64 = 0.9;
        let x = 1.0 / (1.0 + alpha);
        let y = (1.0 - alpha) / (1.0 + alpha);
        Mechanism::from_fn(2, |i, j| {
            let d = i.abs_diff(j) as u32;
            if i == 0 || i == 2 {
                x * alpha.powi(d as i32)
            } else {
                y * alpha.powi(d as i32)
            }
        })
        .unwrap()
    }

    #[test]
    fn uniform_satisfies_everything() {
        let m = uniform(4);
        for property in Property::ALL {
            assert!(property.holds(&m, 1e-9), "{property} should hold for UM");
        }
        assert!(PropertySet::all().all_hold(&m, 1e-9));
    }

    #[test]
    fn geometric_mechanism_example_1_fails_column_honesty_and_fairness() {
        // Example 1 of the paper: for n = 2 and alpha = 0.9 GM reports 0 or 2 with
        // probability ~0.47 each on input 1, so it is neither column honest nor fair
        // nor weakly honest, but it is row monotone and symmetric.
        let m = gm_like_n2();
        assert!(Property::RowHonesty.holds(&m, 1e-9));
        assert!(Property::RowMonotonicity.holds(&m, 1e-9));
        assert!(Property::Symmetry.holds(&m, 1e-9));
        assert!(!Property::ColumnHonesty.holds(&m, 1e-9));
        assert!(!Property::ColumnMonotonicity.holds(&m, 1e-9));
        assert!(!Property::Fairness.holds(&m, 1e-9));
        assert!(!Property::WeakHonesty.holds(&m, 1e-9));
    }

    #[test]
    fn asymmetric_mechanism_fails_symmetry() {
        let m = Mechanism::from_fn(2, |i, j| match (i, j) {
            (0, 0) => 0.6,
            (1, 0) => 0.3,
            (2, 0) => 0.1,
            (0, 1) => 0.3,
            (1, 1) => 0.4,
            (2, 1) => 0.3,
            (0, 2) => 0.2,
            (1, 2) => 0.3,
            (2, 2) => 0.5,
            _ => unreachable!(),
        })
        .unwrap();
        assert!(!Property::Symmetry.holds(&m, 1e-9));
        assert!(Property::ColumnHonesty.holds(&m, 1e-9));
        assert!(!Property::Fairness.holds(&m, 1e-9));
    }

    #[test]
    fn property_set_operations() {
        let mut set = PropertySet::empty();
        assert!(set.is_empty());
        set.insert(Property::Fairness);
        set.insert(Property::WeakHonesty);
        assert_eq!(set.len(), 2);
        assert!(set.contains(Property::Fairness));
        assert!(!set.contains(Property::Symmetry));
        set.remove(Property::Fairness);
        assert!(!set.contains(Property::Fairness));
        let built = PropertySet::empty()
            .with(Property::RowHonesty)
            .with(Property::ColumnMonotonicity);
        assert_eq!(built.iter().count(), 2);
        assert_eq!(built.to_string(), "{RH, CM}");
    }

    #[test]
    fn closure_follows_the_implication_lattice() {
        // CM ⇒ CH ⇒ WH.
        let set = PropertySet::empty().with(Property::ColumnMonotonicity);
        let closed = set.closure();
        assert!(closed.contains(Property::ColumnHonesty));
        assert!(closed.contains(Property::WeakHonesty));
        // RM ⇒ RH.
        let set = PropertySet::empty().with(Property::RowMonotonicity);
        assert!(set.closure().contains(Property::RowHonesty));
        // F + RH ⇒ CH (and then WH).
        let set = PropertySet::empty()
            .with(Property::Fairness)
            .with(Property::RowHonesty);
        let closed = set.closure();
        assert!(closed.contains(Property::ColumnHonesty));
        assert!(closed.contains(Property::WeakHonesty));
        // F + CH ⇒ RH.
        let set = PropertySet::empty()
            .with(Property::Fairness)
            .with(Property::ColumnHonesty);
        assert!(set.closure().contains(Property::RowHonesty));
    }

    #[test]
    fn power_set_has_128_members() {
        let sets = PropertySet::power_set();
        assert_eq!(sets.len(), 128);
        assert_eq!(sets[0], PropertySet::empty());
        assert_eq!(sets[127], PropertySet::all());
    }

    #[test]
    fn short_names_round_trip() {
        for property in Property::ALL {
            assert_eq!(
                Property::from_short_name(property.short_name()),
                Some(property)
            );
        }
        assert_eq!(Property::from_short_name("wh"), Some(Property::WeakHonesty));
        assert_eq!(Property::from_short_name("xx"), None);
    }

    #[test]
    fn property_sets_parse_the_wire_and_display_forms() {
        let expected = PropertySet::empty()
            .with(Property::WeakHonesty)
            .with(Property::ColumnMonotonicity);
        assert_eq!("WH+CM".parse::<PropertySet>().unwrap(), expected);
        assert_eq!("wh, cm".parse::<PropertySet>().unwrap(), expected);
        assert_eq!("WH CM".parse::<PropertySet>().unwrap(), expected);
        assert_eq!("".parse::<PropertySet>().unwrap(), PropertySet::empty());
        assert!(matches!(
            "WH+XX".parse::<PropertySet>(),
            Err(crate::error::CoreError::UnknownProperty { token }) if token == "XX"
        ));
        // Display → FromStr round trips for every subset.
        for set in PropertySet::power_set() {
            assert_eq!(set.to_string().parse::<PropertySet>().unwrap(), set);
        }
    }

    #[test]
    fn violations_and_report() {
        let m = gm_like_n2();
        let violations = PropertySet::all().violations(&m, 1e-9);
        assert!(violations.contains(&Property::Fairness));
        assert!(violations.contains(&Property::WeakHonesty));
        assert!(!violations.contains(&Property::Symmetry));

        let report = PropertyReport::evaluate(&m, 1e-9);
        assert!(report.holds(Property::Symmetry));
        assert!(!report.holds(Property::ColumnHonesty));
    }
}

//! The mechanism matrix representation (Definition 1).
//!
//! A randomised mechanism for count queries over a group of `n` individuals maps a
//! true count `j ∈ {0, …, n}` to a reported count `i ∈ {0, …, n}`.  It is fully
//! described by the `(n+1) × (n+1)` **column-stochastic** matrix `P` with
//! `P[i][j] = Pr[M(j) = i]` — column `j` is the output distribution for input `j`.

use serde::{Deserialize, Serialize};

use crate::alpha::Alpha;
use crate::error::CoreError;

/// Default absolute tolerance for stochasticity / DP / property checks.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// A randomised mechanism for count queries, stored as a dense column-stochastic
/// matrix (Definition 1 of the paper).
///
/// `P[i][j] = Pr[output = i | input = j]`, with both `i` and `j` ranging over
/// `0..=n`.  The struct does not enforce differential privacy by itself; use
/// [`Mechanism::satisfies_dp`] to check Definition 2 for a given [`Alpha`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mechanism {
    /// Group size `n`; the matrix is `(n+1) × (n+1)`.
    n: usize,
    /// Row-major entries: `entries[i * (n+1) + j] = Pr[i | j]`.
    entries: Vec<f64>,
}

impl Mechanism {
    /// Build a mechanism from a probability function `prob(i, j) = Pr[i | j]`.
    ///
    /// Returns an error if the resulting matrix is not column-stochastic within
    /// [`DEFAULT_TOLERANCE`].
    pub fn from_fn(n: usize, prob: impl Fn(usize, usize) -> f64) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidGroupSize { value: n });
        }
        let dim = n + 1;
        let mut entries = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                entries[i * dim + j] = prob(i, j);
            }
        }
        let mechanism = Mechanism { n, entries };
        mechanism.validate(DEFAULT_TOLERANCE)?;
        Ok(mechanism)
    }

    /// Build a mechanism from row-major entries (`entries[i * (n+1) + j] = Pr[i|j]`).
    pub fn from_row_major(n: usize, entries: Vec<f64>) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidGroupSize { value: n });
        }
        let dim = n + 1;
        if entries.len() != dim * dim {
            return Err(CoreError::DimensionMismatch {
                entries: entries.len(),
                expected: dim * dim,
            });
        }
        let mechanism = Mechanism { n, entries };
        mechanism.validate(DEFAULT_TOLERANCE)?;
        Ok(mechanism)
    }

    /// Build a mechanism from per-input output distributions: `columns[j][i] = Pr[i|j]`.
    pub fn from_columns(n: usize, columns: &[Vec<f64>]) -> Result<Self, CoreError> {
        let dim = n + 1;
        if columns.len() != dim || columns.iter().any(|c| c.len() != dim) {
            return Err(CoreError::DimensionMismatch {
                entries: columns.iter().map(Vec::len).sum(),
                expected: dim * dim,
            });
        }
        Mechanism::from_fn(n, |i, j| columns[j][i])
    }

    /// Build a mechanism without validating stochasticity.  Intended for internal
    /// use where the construction guarantees validity (e.g. LP post-processing after
    /// column renormalisation); exposed as `pub(crate)`.
    pub(crate) fn from_row_major_unchecked(n: usize, entries: Vec<f64>) -> Self {
        debug_assert_eq!(entries.len(), (n + 1) * (n + 1));
        Mechanism { n, entries }
    }

    /// Group size `n` (inputs and outputs are `0..=n`).
    #[inline]
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Matrix dimension `n + 1`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n + 1
    }

    /// `Pr[output = i | input = j]`.
    #[inline]
    pub fn prob(&self, output: usize, input: usize) -> f64 {
        self.entries[output * self.dim() + input]
    }

    /// The output distribution for a given input (column `j`), as a fresh vector.
    pub fn column(&self, input: usize) -> Vec<f64> {
        (0..self.dim()).map(|i| self.prob(i, input)).collect()
    }

    /// Row `i` of the matrix: `Pr[i | j]` for every input `j`.
    pub fn row(&self, output: usize) -> &[f64] {
        &self.entries[output * self.dim()..(output + 1) * self.dim()]
    }

    /// Row-major view of all entries.
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }

    /// The dense row-major inverse `M⁻¹`, the linear map that turns an
    /// observed output histogram into unbiased input-frequency estimates
    /// (`E[o] = M·t`, so `t̂ = M⁻¹·o`).
    ///
    /// Fails with [`CoreError::SingularMatrix`] for non-invertible designs
    /// such as the Uniform mechanism.  Repeated callers should prefer the
    /// cached [`DesignedMechanism::inverse`](crate::DesignedMechanism::inverse).
    pub fn inverse(&self) -> Result<Vec<f64>, CoreError> {
        crate::linalg::invert(self.dim(), &self.entries)
    }

    /// The diagonal `Pr[i | i]` — the per-input probability of reporting the truth.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.dim()).map(|i| self.prob(i, i)).collect()
    }

    /// Trace of the matrix (sum of truthful-report probabilities).
    pub fn trace(&self) -> f64 {
        (0..self.dim()).map(|i| self.prob(i, i)).sum()
    }

    /// The smallest entry of the matrix.
    pub fn min_entry(&self) -> f64 {
        self.entries.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// The largest entry of the matrix.
    pub fn max_entry(&self) -> f64 {
        self.entries
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Indices of outputs that are never reported for any input (zero rows) — the
    /// "gaps" pathology of unconstrained optimal mechanisms (Figure 1).
    pub fn zero_rows(&self, tolerance: f64) -> Vec<usize> {
        (0..self.dim())
            .filter(|&i| self.row(i).iter().all(|&p| p <= tolerance))
            .collect()
    }

    /// Marginal probability of each output under a prior over inputs
    /// (`weights[j]` = prior mass of input `j`).  The "spikes" of Figure 1 are
    /// outputs whose marginal probability is disproportionately large.
    pub fn output_marginals(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.dim(), "prior length must be n + 1");
        (0..self.dim())
            .map(|i| (0..self.dim()).map(|j| weights[j] * self.prob(i, j)).sum())
            .collect()
    }

    /// Expected reported value for a given true input.
    pub fn expected_output(&self, input: usize) -> f64 {
        (0..self.dim())
            .map(|i| i as f64 * self.prob(i, input))
            .sum()
    }

    /// Expected absolute error `E[|output − input|]` for a given true input.
    pub fn expected_absolute_error(&self, input: usize) -> f64 {
        (0..self.dim())
            .map(|i| (i as f64 - input as f64).abs() * self.prob(i, input))
            .sum()
    }

    /// Expected squared error `E[(output − input)²]` for a given true input.
    pub fn expected_squared_error(&self, input: usize) -> f64 {
        (0..self.dim())
            .map(|i| (i as f64 - input as f64).powi(2) * self.prob(i, input))
            .sum()
    }

    /// Probability of reporting a value farther than `d` steps from the truth, for a
    /// given true input.
    pub fn tail_probability(&self, input: usize, d: usize) -> f64 {
        (0..self.dim())
            .filter(|&i| i.abs_diff(input) > d)
            .map(|i| self.prob(i, input))
            .sum()
    }

    /// Check column-stochasticity and non-negativity within `tolerance`.
    pub fn validate(&self, tolerance: f64) -> Result<(), CoreError> {
        for j in 0..self.dim() {
            let mut sum = 0.0;
            for i in 0..self.dim() {
                let p = self.prob(i, j);
                if !p.is_finite() || p < -tolerance {
                    return Err(CoreError::NotColumnStochastic { column: j, sum: p });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > tolerance.max(1e-12) * 10.0 {
                return Err(CoreError::NotColumnStochastic { column: j, sum });
            }
        }
        Ok(())
    }

    /// Whether every column is a probability distribution within `tolerance`.
    pub fn is_column_stochastic(&self, tolerance: f64) -> bool {
        self.validate(tolerance).is_ok()
    }

    /// Definition 2: `α ≤ Pr[i|j] / Pr[i|j+1] ≤ 1/α` for every output `i` and every
    /// pair of neighbouring inputs, checked as the equivalent pair of products
    /// `Pr[i|j] ≥ α·Pr[i|j+1]` and `Pr[i|j+1] ≥ α·Pr[i|j]` (which also handles zero
    /// entries correctly: a zero forces its neighbours to zero).
    pub fn satisfies_dp(&self, alpha: Alpha, tolerance: f64) -> bool {
        let a = alpha.value();
        for i in 0..self.dim() {
            for j in 0..self.n {
                let left = self.prob(i, j);
                let right = self.prob(i, j + 1);
                if left + tolerance < a * right || right + tolerance < a * left {
                    return false;
                }
            }
        }
        true
    }

    /// The *output-side* analogue of Definition 2, suggested as future work in the
    /// paper's conclusion: `α ≤ Pr[i|j] / Pr[i+1|j] ≤ 1/α` for every input `j` and
    /// every pair of neighbouring outputs.  This bounds how sharply the output
    /// distribution can change between adjacent reported values.
    pub fn satisfies_output_dp(&self, alpha: Alpha, tolerance: f64) -> bool {
        let a = alpha.value();
        for j in 0..self.dim() {
            for i in 0..self.n {
                let lower = self.prob(i, j);
                let upper = self.prob(i + 1, j);
                if lower + tolerance < a * upper || upper + tolerance < a * lower {
                    return false;
                }
            }
        }
        true
    }

    /// The largest `α` for which this mechanism satisfies α-DP (0 if some ratio is
    /// unbounded, i.e. a zero entry is adjacent to a non-zero one).
    pub fn max_alpha(&self) -> f64 {
        let mut best: f64 = 1.0;
        for i in 0..self.dim() {
            for j in 0..self.n {
                let left = self.prob(i, j);
                let right = self.prob(i, j + 1);
                if left <= 0.0 || right <= 0.0 {
                    if left != right {
                        return 0.0;
                    }
                    continue;
                }
                let ratio = (left / right).min(right / left);
                best = best.min(ratio);
            }
        }
        best
    }

    /// Render the matrix as a textual heat map (used by the figure binaries to echo
    /// the paper's Figures 1, 2, and 7).  Each cell shows `Pr[i|j]` with two decimal
    /// digits; rows are outputs `i` (top = 0), columns are inputs `j`.
    pub fn heatmap(&self) -> String {
        let mut out = String::new();
        out.push_str("      ");
        for j in 0..self.dim() {
            out.push_str(&format!(" j={j:<4}"));
        }
        out.push('\n');
        for i in 0..self.dim() {
            out.push_str(&format!("i={i:<4}"));
            for j in 0..self.dim() {
                out.push_str(&format!(" {:5.2} ", self.prob(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.heatmap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Mechanism {
        Mechanism::from_fn(n, |_, _| 1.0 / (n as f64 + 1.0)).unwrap()
    }

    #[test]
    fn from_fn_builds_and_validates() {
        let m = uniform(4);
        assert_eq!(m.group_size(), 4);
        assert_eq!(m.dim(), 5);
        assert!((m.prob(2, 3) - 0.2).abs() < 1e-12);
        assert!(m.is_column_stochastic(1e-9));
    }

    #[test]
    fn zero_group_size_is_rejected() {
        assert!(matches!(
            Mechanism::from_fn(0, |_, _| 1.0),
            Err(CoreError::InvalidGroupSize { value: 0 })
        ));
    }

    #[test]
    fn non_stochastic_matrices_are_rejected() {
        let err = Mechanism::from_fn(2, |_, _| 0.5).unwrap_err();
        assert!(matches!(err, CoreError::NotColumnStochastic { .. }));
        let err = Mechanism::from_fn(2, |i, _| if i == 0 { -0.5 } else { 0.75 }).unwrap_err();
        assert!(matches!(err, CoreError::NotColumnStochastic { .. }));
    }

    #[test]
    fn from_row_major_checks_dimensions() {
        let err = Mechanism::from_row_major(2, vec![1.0; 4]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::DimensionMismatch {
                entries: 4,
                expected: 9
            }
        ));
    }

    #[test]
    fn from_columns_round_trips() {
        let columns = vec![
            vec![0.7, 0.2, 0.1],
            vec![0.2, 0.6, 0.2],
            vec![0.1, 0.2, 0.7],
        ];
        let m = Mechanism::from_columns(2, &columns).unwrap();
        assert!((m.prob(0, 0) - 0.7).abs() < 1e-12);
        assert!((m.prob(2, 1) - 0.2).abs() < 1e-12);
        assert_eq!(m.column(1), columns[1]);
    }

    #[test]
    fn trace_diagonal_and_rows() {
        let m = uniform(3);
        assert!((m.trace() - 1.0).abs() < 1e-12);
        assert_eq!(m.diagonal().len(), 4);
        assert_eq!(m.row(2).len(), 4);
        assert_eq!(m.entries().len(), 16);
    }

    #[test]
    fn expected_values_and_tails() {
        // Deterministic identity-like mechanism: always reports the truth.
        let m = Mechanism::from_fn(3, |i, j| if i == j { 1.0 } else { 0.0 }).unwrap();
        assert_eq!(m.expected_output(2), 2.0);
        assert_eq!(m.expected_absolute_error(2), 0.0);
        assert_eq!(m.expected_squared_error(1), 0.0);
        assert_eq!(m.tail_probability(1, 0), 0.0);

        let u = uniform(3);
        assert!((u.expected_output(0) - 1.5).abs() < 1e-12);
        assert!((u.tail_probability(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_rows_detect_gaps() {
        // A mechanism that never outputs 1 (a "gap" as in Figure 1).
        let m = Mechanism::from_fn(2, |i, _| match i {
            0 => 0.5,
            1 => 0.0,
            _ => 0.5,
        })
        .unwrap();
        assert_eq!(m.zero_rows(1e-12), vec![1]);
        assert!(uniform(2).zero_rows(1e-12).is_empty());
    }

    #[test]
    fn output_marginals_use_prior() {
        let m = Mechanism::from_fn(1, |i, j| if i == j { 0.8 } else { 0.2 }).unwrap();
        let marginals = m.output_marginals(&[1.0, 0.0]);
        assert!((marginals[0] - 0.8).abs() < 1e-12);
        assert!((marginals[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dp_check_identity_fails_uniform_passes() {
        let alpha = Alpha::new(0.9).unwrap();
        let identity = Mechanism::from_fn(3, |i, j| if i == j { 1.0 } else { 0.0 }).unwrap();
        assert!(!identity.satisfies_dp(alpha, 1e-9));
        assert_eq!(identity.max_alpha(), 0.0);
        let u = uniform(3);
        assert!(u.satisfies_dp(alpha, 1e-9));
        assert!((u.max_alpha() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn output_dp_detects_sharp_output_jumps() {
        let alpha = Alpha::new(0.9).unwrap();
        // Uniform: all ratios are 1, satisfies both input- and output-side DP.
        assert!(uniform(3).satisfies_output_dp(alpha, 1e-9));
        // A column with a sharp step between adjacent outputs violates output DP.
        let steep = Mechanism::from_fn(2, |i, _| match i {
            0 => 0.9,
            1 => 0.05,
            _ => 0.05,
        })
        .unwrap();
        assert!(steep.satisfies_dp(alpha, 1e-9));
        assert!(!steep.satisfies_output_dp(alpha, 1e-9));
    }

    #[test]
    fn heatmap_contains_all_cells() {
        let m = uniform(2);
        let text = m.heatmap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("j=2"));
        assert!(text.contains("0.33"));
        assert_eq!(m.to_string(), text);
    }

    #[test]
    fn serde_round_trip() {
        let m = uniform(3);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mechanism = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

//! # cpm-core — Constrained Private Mechanisms for Count Data
//!
//! This crate implements the core contribution of *"Constrained Private Mechanisms
//! for Count Data"* (Cormode, Kulkarni, Srivastava — ICDE 2018): the design of
//! α-differentially-private mechanisms for releasing the count of a group of `n`
//! individuals, with structural constraints that rule out the pathologies (output
//! gaps and spikes) of plain loss-minimising designs.
//!
//! ## What's here
//!
//! * [`Mechanism`] — the `(n+1) × (n+1)` column-stochastic matrix representation of a
//!   count mechanism (Definition 1), with DP verification (Definition 2).
//! * [`Alpha`] — the privacy parameter `α = exp(−ε)`.
//! * [`Property`] / [`PropertySet`] — the seven structural properties of Section IV-A
//!   (row/column honesty and monotonicity, fairness, weak honesty, symmetry) with
//!   their implication lattice.
//! * [`Objective`], [`rescaled_l0`], [`rescaled_l0_d`] — the loss functions of
//!   Definition 3 and the rescaled `L0` / `L0,d` scores of Eq. (1).
//! * [`mechanisms`] — explicit constructions: the truncated Geometric Mechanism
//!   ([`GeometricMechanism`], Definition 4), the paper's new Explicit Fair Mechanism
//!   ([`ExplicitFairMechanism`], Eq. 16), the Uniform baseline, randomized response,
//!   the Exponential Mechanism, and a discretised Laplace mechanism.
//! * [`design`] — **the design entry point**: [`MechanismSpec`] (a validated builder
//!   with a canonical serde form and a bit-exact [`SpecKey`]) and the
//!   [`DesignedMechanism`] artifact it produces (matrix + provenance + solver stats +
//!   achieved-property report + lazily-built samplers, serde round-trippable).
//! * [`lp`] — the BASICDP linear program (Eqs. 3–6) plus any subset of the structural
//!   properties (Theorem 2), solved with the workspace's own simplex solver.  This is
//!   the low-level escape hatch for objectives outside the [`ObjectiveKey`] family
//!   (explicit priors, the minimax aggregator).
//! * [`selection`] — the Figure 5 flowchart collapsing the 128 property combinations
//!   to at most four distinct mechanisms.
//! * [`symmetrize`] — the Theorem 1 symmetrisation construction.
//! * [`derivability`] — the Gupte–Sundararajan "derivable from GM" test.
//! * [`sampling`] — drawing private outputs from a mechanism (and directly from GM).
//! * [`closed_form`] — analytic scores used as oracles and fast paths.
//!
//! ## Example: designing a constrained mechanism
//!
//! Every design goes through one typed entry point: a [`MechanismSpec`] is
//! validated at `build()` and produces a [`DesignedMechanism`] carrying the
//! matrix together with its provenance.
//!
//! ```
//! use cpm_core::prelude::*;
//!
//! let alpha = Alpha::new(0.9).unwrap();
//! let n = 4;
//!
//! // The unconstrained L0-optimal mechanism is the Geometric Mechanism ...
//! let gm = GeometricMechanism::new(n, alpha).unwrap();
//! // ... but it is not even weakly honest at this privacy level (Lemma 2).
//! assert!(!Property::WeakHonesty.holds(gm.matrix(), 1e-9));
//!
//! // Ask the design path for a fair mechanism instead: the Figure-5 flowchart
//! // picks the Explicit Fair Mechanism, no LP required.
//! let designed = MechanismSpec::new(n, alpha)
//!     .properties(PropertySet::empty().with(Property::Fairness))
//!     .build()
//!     .unwrap()
//!     .design()
//!     .unwrap();
//! assert_eq!(designed.choice(), Some(MechanismChoice::ExplicitFair));
//! assert!(!designed.used_lp());
//! assert!(designed.requested_satisfied());
//! assert!(PropertySet::all().all_hold(designed.mechanism(), 1e-9));
//!
//! // The artifact knows its own price: the rescaled-L0 cost of all seven
//! // properties is tiny relative to GM's optimum (Figure 6).
//! let loss_gm = rescaled_l0(gm.matrix());
//! assert!(designed.score() <= loss_gm * (1.0 + 1.0 / n as f64) + 1e-9);
//!
//! // The spec round-trips through JSON with a bit-exact cache key — the basis
//! // of the serving cache's snapshot files.
//! let text = serde_json::to_string(designed.spec()).unwrap();
//! let back: MechanismSpec = serde_json::from_str(&text).unwrap();
//! assert_eq!(back.key(), designed.key());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod closed_form;
pub mod derivability;
pub mod design;
pub mod error;
pub mod linalg;
pub mod lp;
pub mod matrix;
pub mod mechanisms;
pub mod objective;
pub mod properties;
pub mod sampling;
pub mod selection;
pub mod symmetrize;

pub use alpha::{Alpha, AlphaKey};
pub use design::{DesignedMechanism, MechanismSpec, SpecKey, DEFAULT_PROPERTY_TOLERANCE};
pub use error::CoreError;
pub use linalg::LuFactors;
pub use matrix::{Mechanism, DEFAULT_TOLERANCE};
pub use mechanisms::{
    BinaryRandomizedResponse, ExplicitFairMechanism, ExponentialMechanism, GeometricMechanism,
    LaplaceMechanism, NaryRandomizedResponse, UniformMechanism,
};
pub use objective::{
    rescaled_l0, rescaled_l0_d, Aggregator, LossKind, Objective, ObjectiveKey, Prior,
};
pub use properties::{Property, PropertyReport, PropertySet};
pub use sampling::{AliasSampler, MechanismSampler};
pub use selection::MechanismChoice;

/// Commonly used items, re-exported for `use cpm_core::prelude::*`.
pub mod prelude {
    pub use crate::alpha::{Alpha, AlphaKey};
    pub use crate::closed_form;
    pub use crate::derivability::{derivability_violations, is_derivable_from_geometric};
    pub use crate::design::{
        DesignedMechanism, MechanismSpec, SpecKey, DEFAULT_PROPERTY_TOLERANCE,
    };
    pub use crate::error::CoreError;
    pub use crate::linalg::LuFactors;
    #[allow(deprecated)]
    pub use crate::lp::weak_honest_mechanism;
    pub use crate::lp::{
        optimal_constrained, optimal_unconstrained, wm_properties, DesignProblem, DesignSolution,
    };
    pub use crate::matrix::{Mechanism, DEFAULT_TOLERANCE};
    pub use crate::mechanisms::{
        BinaryRandomizedResponse, ExplicitFairMechanism, ExponentialMechanism, GeometricMechanism,
        LaplaceMechanism, NaryRandomizedResponse, UniformMechanism,
    };
    pub use crate::objective::{
        rescaled_l0, rescaled_l0_d, Aggregator, LossKind, Objective, ObjectiveKey, Prior,
    };
    pub use crate::properties::{Property, PropertyReport, PropertySet};
    pub use crate::sampling::{sample_geometric_direct, AliasSampler, MechanismSampler};
    pub use crate::selection::{self, select_mechanism, MechanismChoice};
    #[allow(deprecated)]
    pub use crate::selection::{design_for_properties, realize_with_stats};
    pub use crate::symmetrize::{reflect, symmetrize};
}

//! # cpm-core — Constrained Private Mechanisms for Count Data
//!
//! This crate implements the core contribution of *"Constrained Private Mechanisms
//! for Count Data"* (Cormode, Kulkarni, Srivastava — ICDE 2018): the design of
//! α-differentially-private mechanisms for releasing the count of a group of `n`
//! individuals, with structural constraints that rule out the pathologies (output
//! gaps and spikes) of plain loss-minimising designs.
//!
//! ## What's here
//!
//! * [`Mechanism`] — the `(n+1) × (n+1)` column-stochastic matrix representation of a
//!   count mechanism (Definition 1), with DP verification (Definition 2).
//! * [`Alpha`] — the privacy parameter `α = exp(−ε)`.
//! * [`Property`] / [`PropertySet`] — the seven structural properties of Section IV-A
//!   (row/column honesty and monotonicity, fairness, weak honesty, symmetry) with
//!   their implication lattice.
//! * [`Objective`], [`rescaled_l0`], [`rescaled_l0_d`] — the loss functions of
//!   Definition 3 and the rescaled `L0` / `L0,d` scores of Eq. (1).
//! * [`mechanisms`] — explicit constructions: the truncated Geometric Mechanism
//!   ([`GeometricMechanism`], Definition 4), the paper's new Explicit Fair Mechanism
//!   ([`ExplicitFairMechanism`], Eq. 16), the Uniform baseline, randomized response,
//!   the Exponential Mechanism, and a discretised Laplace mechanism.
//! * [`lp`] — the BASICDP linear program (Eqs. 3–6) plus any subset of the structural
//!   properties (Theorem 2), solved with the workspace's own simplex solver; includes
//!   the paper's WM ([`lp::weak_honest_mechanism`]).
//! * [`selection`] — the Figure 5 flowchart collapsing the 128 property combinations
//!   to at most four distinct mechanisms.
//! * [`symmetrize`] — the Theorem 1 symmetrisation construction.
//! * [`derivability`] — the Gupte–Sundararajan "derivable from GM" test.
//! * [`sampling`] — drawing private outputs from a mechanism (and directly from GM).
//! * [`closed_form`] — analytic scores used as oracles and fast paths.
//!
//! ## Example: designing a constrained mechanism
//!
//! ```
//! use cpm_core::prelude::*;
//!
//! let alpha = Alpha::new(0.9).unwrap();
//! let n = 4;
//!
//! // The unconstrained L0-optimal mechanism is the Geometric Mechanism ...
//! let gm = GeometricMechanism::new(n, alpha).unwrap();
//! // ... but it is not even weakly honest at this privacy level (Lemma 2).
//! assert!(!Property::WeakHonesty.holds(gm.matrix(), 1e-9));
//!
//! // Ask the Figure-5 flowchart for a fair mechanism instead.
//! let requested = PropertySet::empty().with(Property::Fairness);
//! let (choice, fair) = selection::design_for_properties(requested, n, alpha).unwrap();
//! assert_eq!(choice, selection::MechanismChoice::ExplicitFair);
//! assert!(PropertySet::all().all_hold(&fair, 1e-9));
//!
//! // The price of all seven properties is tiny (Figure 6).
//! let loss_gm = rescaled_l0(gm.matrix());
//! let loss_fair = rescaled_l0(&fair);
//! assert!(loss_fair <= loss_gm * (1.0 + 1.0 / n as f64) + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod closed_form;
pub mod derivability;
pub mod error;
pub mod lp;
pub mod matrix;
pub mod mechanisms;
pub mod objective;
pub mod properties;
pub mod sampling;
pub mod selection;
pub mod symmetrize;

pub use alpha::{Alpha, AlphaKey};
pub use error::CoreError;
pub use matrix::{Mechanism, DEFAULT_TOLERANCE};
pub use mechanisms::{
    BinaryRandomizedResponse, ExplicitFairMechanism, ExponentialMechanism, GeometricMechanism,
    LaplaceMechanism, NaryRandomizedResponse, UniformMechanism,
};
pub use objective::{rescaled_l0, rescaled_l0_d, Aggregator, LossKind, Objective, Prior};
pub use properties::{Property, PropertyReport, PropertySet};
pub use sampling::{AliasSampler, MechanismSampler};

/// Commonly used items, re-exported for `use cpm_core::prelude::*`.
pub mod prelude {
    pub use crate::alpha::{Alpha, AlphaKey};
    pub use crate::closed_form;
    pub use crate::derivability::{derivability_violations, is_derivable_from_geometric};
    pub use crate::error::CoreError;
    pub use crate::lp::{
        optimal_constrained, optimal_unconstrained, weak_honest_mechanism, DesignProblem,
        DesignSolution,
    };
    pub use crate::matrix::{Mechanism, DEFAULT_TOLERANCE};
    pub use crate::mechanisms::{
        BinaryRandomizedResponse, ExplicitFairMechanism, ExponentialMechanism, GeometricMechanism,
        LaplaceMechanism, NaryRandomizedResponse, UniformMechanism,
    };
    pub use crate::objective::{
        rescaled_l0, rescaled_l0_d, Aggregator, LossKind, Objective, Prior,
    };
    pub use crate::properties::{Property, PropertyReport, PropertySet};
    pub use crate::sampling::{sample_geometric_direct, AliasSampler, MechanismSampler};
    pub use crate::selection::{
        self, design_for_properties, realize_with_stats, select_mechanism, MechanismChoice,
    };
    pub use crate::symmetrize::{reflect, symmetrize};
}

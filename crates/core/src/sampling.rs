//! Sampling outputs from mechanisms.
//!
//! The experiments of Section V repeatedly privatise group counts: given a mechanism
//! matrix and a true count `j`, draw an output from column `j`.  [`MechanismSampler`]
//! precomputes cumulative distributions per column for `O(log n)` sampling, and
//! [`sample_geometric_direct`] draws from the truncated Geometric Mechanism directly
//! via two-sided geometric noise (Definition 4) without materialising the matrix —
//! the two are verified against each other in the tests.

use rand::Rng;

use crate::alpha::Alpha;
use crate::matrix::Mechanism;

/// A sampler for a fixed mechanism, with per-column cumulative distributions
/// precomputed.
///
/// The CDFs live in **one contiguous `dim`-strided buffer** (column `j` occupies
/// `cdf[j * dim .. (j + 1) * dim]`) rather than a `Vec<Vec<f64>>`: `privatize`
/// walks one column per input, and keeping all columns in a single allocation
/// avoids a pointer chase per sample and keeps neighbouring columns on the same
/// cache lines when inputs repeat.
#[derive(Debug, Clone)]
pub struct MechanismSampler {
    dim: usize,
    /// Flattened column-major CDFs: `cdf[input * dim + i] = Pr[output <= i | input]`.
    cdf: Vec<f64>,
}

impl MechanismSampler {
    /// Precompute the sampler for `mechanism`.
    pub fn new(mechanism: &Mechanism) -> Self {
        let dim = mechanism.dim();
        let mut cdf = Vec::with_capacity(dim * dim);
        for j in 0..dim {
            let mut running = 0.0;
            for i in 0..dim {
                running += mechanism.prob(i, j);
                cdf.push(running);
            }
            // Guard against round-off: the last entry must cover u ~ Uniform[0,1).
            let last = cdf.last_mut().expect("dim > 0");
            *last = f64::max(*last, 1.0);
        }
        MechanismSampler { dim, cdf }
    }

    /// Number of possible outputs (`n + 1`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw one output for the true count `input`.
    pub fn sample<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let column = &self.cdf[input * self.dim..(input + 1) * self.dim];
        // First index whose cumulative mass exceeds u (the last entry is >= 1 > u,
        // so the partition point is always a valid output).
        column.partition_point(|&mass| mass <= u).min(self.dim - 1)
    }

    /// Privatise a slice of true counts, drawing one output per count.
    pub fn privatize<R: Rng + ?Sized>(&self, counts: &[usize], rng: &mut R) -> Vec<usize> {
        counts.iter().map(|&c| self.sample(c, rng)).collect()
    }
}

/// Sample from the truncated Geometric Mechanism directly (Definition 4): add
/// two-sided geometric noise with parameter α to `input` and clamp to `[0, n]`.
pub fn sample_geometric_direct<R: Rng + ?Sized>(
    n: usize,
    alpha: Alpha,
    input: usize,
    rng: &mut R,
) -> usize {
    let a = alpha.value();
    if a >= 1.0 {
        // Degenerate case: the noise distribution is improper; all mass escapes to the
        // clamped endpoints, each with probability 1/2 (matching the matrix limit).
        return if rng.gen_bool(0.5) { 0 } else { n };
    }
    // Two-sided geometric: magnitude |delta| has Pr[|delta| = k] proportional to
    // alpha^k (k >= 1), Pr[delta = 0] = (1 - alpha)/(1 + alpha); signs are symmetric.
    let p_zero = (1.0 - a) / (1.0 + a);
    let u: f64 = rng.gen();
    let delta: i64 = if u < p_zero {
        0
    } else {
        // Draw the magnitude from a geometric distribution with success probability
        // (1 - alpha), shifted to start at 1, then a fair sign.
        let magnitude = 1 + sample_geometric_trials(a, rng);
        if rng.gen_bool(0.5) {
            magnitude as i64
        } else {
            -(magnitude as i64)
        }
    };
    (input as i64 + delta).clamp(0, n as i64) as usize
}

/// Number of failures before the first success of a Bernoulli(1 − α) process.
fn sample_geometric_trials<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> u64 {
    // Inverse-CDF sampling: k = floor(ln(u) / ln(alpha)).
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / alpha.ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{ExplicitFairMechanism, GeometricMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn samples_follow_the_column_distribution() {
        let em = ExplicitFairMechanism::new(4, a(0.8)).unwrap();
        let sampler = MechanismSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 200_000;
        let input = 2;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            counts[sampler.sample(input, &mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / trials as f64;
            let expected = em.matrix().prob(i, input);
            assert!(
                (empirical - expected).abs() < 0.01,
                "output {i}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn direct_geometric_sampler_matches_the_matrix() {
        let n = 5;
        let alpha = a(0.7);
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 200_000;
        let input = 1;
        let mut counts = vec![0usize; n + 1];
        for _ in 0..trials {
            counts[sample_geometric_direct(n, alpha, input, &mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / trials as f64;
            let expected = gm.matrix().prob(i, input);
            assert!(
                (empirical - expected).abs() < 0.01,
                "output {i}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn privatize_maps_each_count() {
        let em = ExplicitFairMechanism::new(3, a(0.6)).unwrap();
        let sampler = MechanismSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(3);
        let outputs = sampler.privatize(&[0, 1, 2, 3, 3, 0], &mut rng);
        assert_eq!(outputs.len(), 6);
        assert!(outputs.iter().all(|&o| o <= 3));
    }

    #[test]
    fn sampler_dim_matches_mechanism() {
        let em = ExplicitFairMechanism::new(6, a(0.5)).unwrap();
        assert_eq!(MechanismSampler::new(em.matrix()).dim(), 7);
    }

    #[test]
    fn alpha_one_direct_sampler_hits_the_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let out = sample_geometric_direct(4, a(1.0), 2, &mut rng);
            assert!(out == 0 || out == 4);
        }
    }
}

//! Sampling outputs from mechanisms.
//!
//! The experiments of Section V repeatedly privatise group counts: given a mechanism
//! matrix and a true count `j`, draw an output from column `j`.  Two samplers share
//! one contract (and one `dim`-strided memory layout):
//!
//! * [`MechanismSampler`] precomputes cumulative distributions per column and walks
//!   them by binary search — `O(log n)` per draw, the natural oracle.
//! * [`AliasSampler`] precomputes a Walker/Vose alias table per column — `O(1)` per
//!   draw regardless of `n`, the serving hot path (`cpm-serve`).
//!
//! Both consume exactly **one uniform `f64` per draw**, exposed through
//! `sample_from_uniform`, so a recorded uniform stream can be replayed through
//! either sampler for differential testing and reproducible serving.
//! [`sample_geometric_direct`] draws from the truncated Geometric Mechanism
//! directly via two-sided geometric noise (Definition 4) without materialising the
//! matrix — it is verified against the matrix samplers in the tests.

use rand::Rng;

use crate::alpha::Alpha;
use crate::matrix::Mechanism;

/// Columns whose total mass drifts further than this from 1 are renormalised at
/// sampler-construction time (LP round-off can leave a column summing to
/// `1 - 1e-13`; anything beyond this bound is treated as real drift, not noise).
const COLUMN_MASS_DRIFT: f64 = 1e-12;

/// A sampler for a fixed mechanism, with per-column cumulative distributions
/// precomputed.
///
/// The CDFs live in **one contiguous `dim`-strided buffer** (column `j` occupies
/// `cdf[j * dim .. (j + 1) * dim]`) rather than a `Vec<Vec<f64>>`: `privatize`
/// walks one column per input, and keeping all columns in a single allocation
/// avoids a pointer chase per sample and keeps neighbouring columns on the same
/// cache lines when inputs repeat.
#[derive(Debug, Clone)]
pub struct MechanismSampler {
    dim: usize,
    /// Flattened column-major CDFs: `cdf[input * dim + i] = Pr[output <= i | input]`.
    cdf: Vec<f64>,
}

impl MechanismSampler {
    /// Precompute the sampler for `mechanism`.
    ///
    /// Columns whose total mass has drifted more than [`COLUMN_MASS_DRIFT`] from 1
    /// (LP round-off, hand-built matrices) are renormalised so the CDF covers the
    /// whole unit interval, and the final entry of every column is forced to
    /// exactly `1.0` — `u ~ Uniform[0, 1)` then always lands strictly inside the
    /// table, with no mass silently folded into the last output.
    pub fn new(mechanism: &Mechanism) -> Self {
        let dim = mechanism.dim();
        let mut cdf = Vec::with_capacity(dim * dim);
        for j in 0..dim {
            let mut running = 0.0;
            for i in 0..dim {
                running += mechanism.prob(i, j);
                cdf.push(running);
            }
            let column = &mut cdf[j * dim..(j + 1) * dim];
            // Renormalise real drift instead of clamping: a bare `max(last, 1.0)`
            // would assign all missing mass to the largest output, biasing the tail.
            if (running - 1.0).abs() > COLUMN_MASS_DRIFT && running > 0.0 {
                for entry in column.iter_mut() {
                    *entry /= running;
                }
            }
            // The last entry must be *exactly* 1.0 so that u < 1 always resolves.
            column[dim - 1] = 1.0;
        }
        MechanismSampler { dim, cdf }
    }

    /// Number of possible outputs (`n + 1`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw one output for the true count `input`.
    pub fn sample<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> usize {
        self.sample_from_uniform(input, rng.gen())
    }

    /// Deterministically map one uniform `u ∈ [0, 1)` to an output for `input`.
    ///
    /// This is the whole sampler — [`MechanismSampler::sample`] draws `u` and
    /// delegates here.  Exposing it lets differential tests replay one recorded
    /// uniform stream through several samplers.
    pub fn sample_from_uniform(&self, input: usize, u: f64) -> usize {
        let column = &self.cdf[input * self.dim..(input + 1) * self.dim];
        // First index whose cumulative mass exceeds u (the last entry is exactly
        // 1 > u, so the partition point is always a valid output).
        column.partition_point(|&mass| mass <= u).min(self.dim - 1)
    }

    /// Privatise a slice of true counts, drawing one output per count.
    pub fn privatize<R: Rng + ?Sized>(&self, counts: &[usize], rng: &mut R) -> Vec<usize> {
        counts.iter().map(|&c| self.sample(c, rng)).collect()
    }
}

/// An `O(1)`-per-draw sampler: one Walker/Vose alias table per column.
///
/// Construction is `O(dim)` per column (Vose's two-stack method).  A draw splits a
/// single uniform into a bucket index and an acceptance fraction, then makes at
/// most one comparison — no binary search, no dependence on `n`.  The tables live
/// in two **`dim`-strided buffers** mirroring [`MechanismSampler`]'s layout:
/// column `j` occupies `prob[j * dim .. (j + 1) * dim]` (acceptance thresholds)
/// and the same slice of `alias` (overflow targets).
///
/// The sampler realises the same distribution as the CDF sampler for the same
/// mechanism (same drift renormalisation, construction is exact up to a few ulps
/// of float rounding); `implied_pmf` reconstructs the realised distribution for
/// verification.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    dim: usize,
    /// Flattened column-major acceptance thresholds: bucket `b` of column `j` is
    /// accepted (yielding output `b`) when the acceptance fraction is below
    /// `prob[j * dim + b]`.
    prob: Vec<f64>,
    /// Flattened column-major alias targets: bucket `b` of column `j` yields
    /// `alias[j * dim + b]` when the acceptance test fails.
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Build alias tables for every column of `mechanism`.
    pub fn new(mechanism: &Mechanism) -> Self {
        let dim = mechanism.dim();
        debug_assert!(dim <= u32::MAX as usize, "alias targets are stored as u32");
        let mut prob = vec![0.0f64; dim * dim];
        let mut alias = vec![0u32; dim * dim];
        // Scratch reused across columns: scaled weights and the two Vose stacks.
        let mut scaled = vec![0.0f64; dim];
        let mut small: Vec<u32> = Vec::with_capacity(dim);
        let mut large: Vec<u32> = Vec::with_capacity(dim);
        for j in 0..dim {
            let column = j * dim;
            let total: f64 = (0..dim).map(|i| mechanism.prob(i, j)).sum();
            if total <= 0.0 {
                // Degenerate all-zero column: mirror the CDF sampler, whose
                // forced exact-1.0 tail sends every draw to the largest output
                // — the two samplers must realise the same distribution even
                // on unvalidated input.
                let last = (dim - 1) as u32;
                for b in 0..dim {
                    alias[column + b] = last;
                }
                prob[column + dim - 1] = 1.0;
                continue;
            }
            // Same renormalisation policy as the CDF sampler so the two samplers
            // realise identical distributions even on drifted columns.
            let scale = if (total - 1.0).abs() > COLUMN_MASS_DRIFT {
                dim as f64 / total
            } else {
                dim as f64
            };
            small.clear();
            large.clear();
            for (i, weight) in scaled.iter_mut().enumerate() {
                *weight = mechanism.prob(i, j) * scale;
                if *weight < 1.0 {
                    small.push(i as u32);
                } else {
                    large.push(i as u32);
                }
            }
            while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
                small.pop();
                prob[column + s as usize] = scaled[s as usize];
                alias[column + s as usize] = l;
                // The donor keeps what is left after topping the small bucket up to
                // exactly 1; computed as (w_l - (1 - w_s)) for better cancellation.
                scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
                if scaled[l as usize] < 1.0 {
                    large.pop();
                    small.push(l);
                }
            }
            // Leftovers on either stack hold (up to rounding) exactly weight 1:
            // they accept unconditionally and never use their alias slot.
            for &i in large.iter().chain(small.iter()) {
                prob[column + i as usize] = 1.0;
                alias[column + i as usize] = i;
            }
        }
        AliasSampler { dim, prob, alias }
    }

    /// Number of possible outputs (`n + 1`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw one output for the true count `input` — `O(1)`.
    pub fn sample<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> usize {
        self.sample_from_uniform(input, rng.gen())
    }

    /// Deterministically map one uniform `u ∈ [0, 1)` to an output for `input`.
    ///
    /// `u * dim` is split into an integer bucket and a fractional acceptance test;
    /// the two parts of a single uniform are independent, so one `f64` per draw
    /// suffices (the same budget as [`MechanismSampler::sample_from_uniform`]).
    pub fn sample_from_uniform(&self, input: usize, u: f64) -> usize {
        let scaled = u * self.dim as f64;
        let bucket = (scaled as usize).min(self.dim - 1);
        let fraction = scaled - bucket as f64;
        let at = input * self.dim + bucket;
        if fraction < self.prob[at] {
            bucket
        } else {
            self.alias[at] as usize
        }
    }

    /// Privatise a slice of true counts, drawing one output per count.
    pub fn privatize<R: Rng + ?Sized>(&self, counts: &[usize], rng: &mut R) -> Vec<usize> {
        counts.iter().map(|&c| self.sample(c, rng)).collect()
    }

    /// Reconstruct the exact probability mass this table assigns to each output of
    /// `input`: bucket `b` contributes `prob[b] / dim` to output `b` and
    /// `(1 - prob[b]) / dim` to `alias[b]`.  Used by the differential tests to
    /// verify distribution equivalence with the source column without sampling.
    pub fn implied_pmf(&self, input: usize) -> Vec<f64> {
        let mut pmf = vec![0.0f64; self.dim];
        let inv_dim = 1.0 / self.dim as f64;
        let column = input * self.dim;
        for b in 0..self.dim {
            let p = self.prob[column + b];
            pmf[b] += p * inv_dim;
            pmf[self.alias[column + b] as usize] += (1.0 - p) * inv_dim;
        }
        pmf
    }
}

/// Sample from the truncated Geometric Mechanism directly (Definition 4): add
/// two-sided geometric noise with parameter α to `input` and clamp to `[0, n]`.
pub fn sample_geometric_direct<R: Rng + ?Sized>(
    n: usize,
    alpha: Alpha,
    input: usize,
    rng: &mut R,
) -> usize {
    let a = alpha.value();
    if a >= 1.0 {
        // Degenerate case: the noise distribution is improper; all mass escapes to the
        // clamped endpoints, each with probability 1/2 (matching the matrix limit).
        return if rng.gen_bool(0.5) { 0 } else { n };
    }
    // Two-sided geometric: magnitude |delta| has Pr[|delta| = k] proportional to
    // alpha^k (k >= 1), Pr[delta = 0] = (1 - alpha)/(1 + alpha); signs are symmetric.
    let p_zero = (1.0 - a) / (1.0 + a);
    let u: f64 = rng.gen();
    let delta: i64 = if u < p_zero {
        0
    } else {
        // Draw the magnitude from a geometric distribution with success probability
        // (1 - alpha), shifted to start at 1, then a fair sign.
        let magnitude = 1 + sample_geometric_trials(a, rng);
        if rng.gen_bool(0.5) {
            magnitude as i64
        } else {
            -(magnitude as i64)
        }
    };
    (input as i64 + delta).clamp(0, n as i64) as usize
}

/// Number of failures before the first success of a Bernoulli(1 − α) process.
fn sample_geometric_trials<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> u64 {
    // Inverse-CDF sampling: k = floor(ln(u) / ln(alpha)).
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / alpha.ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{ExplicitFairMechanism, GeometricMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn samples_follow_the_column_distribution() {
        let em = ExplicitFairMechanism::new(4, a(0.8)).unwrap();
        let sampler = MechanismSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 200_000;
        let input = 2;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            counts[sampler.sample(input, &mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / trials as f64;
            let expected = em.matrix().prob(i, input);
            assert!(
                (empirical - expected).abs() < 0.01,
                "output {i}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn alias_samples_follow_the_column_distribution() {
        let em = ExplicitFairMechanism::new(4, a(0.8)).unwrap();
        let sampler = AliasSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 200_000;
        let input = 2;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            counts[sampler.sample(input, &mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / trials as f64;
            let expected = em.matrix().prob(i, input);
            assert!(
                (empirical - expected).abs() < 0.01,
                "output {i}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn alias_implied_pmf_reconstructs_every_column() {
        for &(n, alpha) in &[(4usize, 0.8), (9, 0.9), (16, 0.5), (31, 0.99)] {
            let gm = GeometricMechanism::new(n, a(alpha)).unwrap().into_matrix();
            let sampler = AliasSampler::new(&gm);
            for j in 0..gm.dim() {
                let pmf = sampler.implied_pmf(j);
                for (i, &mass) in pmf.iter().enumerate() {
                    assert!(
                        (mass - gm.prob(i, j)).abs() < 1e-12,
                        "n={n} alpha={alpha} column {j} output {i}: {mass} vs {}",
                        gm.prob(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn under_normalized_columns_are_renormalized_not_clamped() {
        // A deliberately under-normalised matrix: every column sums to 0.97, with
        // the missing 3% of mass spread over the whole column.  The old
        // `f64::max(last, 1.0)` clamp would have assigned all 3% to the *largest*
        // output; renormalisation must instead scale the whole column up.
        let n = 3;
        let dim = n + 1;
        let column = [0.4 * 0.97, 0.3 * 0.97, 0.2 * 0.97, 0.1 * 0.97];
        let mut entries = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                entries[i * dim + j] = column[i];
            }
        }
        let mechanism = Mechanism::from_row_major_unchecked(n, entries);

        for j in 0..dim {
            let cdf_sampler = MechanismSampler::new(&mechanism);
            let alias_sampler = AliasSampler::new(&mechanism);
            let mut rng = StdRng::seed_from_u64(17);
            let trials = 400_000;
            let mut counts = [0usize; 4];
            for _ in 0..trials {
                counts[cdf_sampler.sample(j, &mut rng)] += 1;
            }
            // The renormalised distribution is exactly [0.4, 0.3, 0.2, 0.1]; with
            // the clamp bug the last output would absorb the deficit (0.1 -> 0.127).
            let expected = [0.4, 0.3, 0.2, 0.1];
            for (i, &count) in counts.iter().enumerate() {
                let empirical = count as f64 / trials as f64;
                assert!(
                    (empirical - expected[i]).abs() < 0.005,
                    "column {j} output {i}: {empirical} vs {}",
                    expected[i]
                );
            }
            // The alias table renormalises identically (checked exactly via pmf).
            let pmf = alias_sampler.implied_pmf(j);
            for (i, &mass) in pmf.iter().enumerate() {
                assert!((mass - expected[i]).abs() < 1e-12, "alias pmf {i}: {mass}");
            }
        }
    }

    #[test]
    fn zero_mass_columns_behave_identically_in_both_samplers() {
        // An unvalidated matrix with an all-zero column 1: the CDF sampler's
        // forced exact-1.0 tail sends every draw to the largest output, and the
        // alias table must realise the very same degenerate distribution.
        let n = 3;
        let dim = n + 1;
        let mut entries = vec![0.0; dim * dim];
        for j in [0usize, 2, 3] {
            entries[j * dim + j] = 1.0; // identity on the other columns
        }
        let mechanism = Mechanism::from_row_major_unchecked(n, entries);
        let cdf = MechanismSampler::new(&mechanism);
        let alias = AliasSampler::new(&mechanism);
        for k in 0..64 {
            let u = k as f64 / 64.0;
            assert_eq!(cdf.sample_from_uniform(1, u), n);
            assert_eq!(alias.sample_from_uniform(1, u), n);
        }
        let pmf = alias.implied_pmf(1);
        assert_eq!(pmf[n], 1.0);
        assert!(pmf[..n].iter().all(|&mass| mass == 0.0));
    }

    #[test]
    fn cdf_tail_is_exactly_one_for_every_column() {
        let gm = GeometricMechanism::new(12, a(0.9)).unwrap().into_matrix();
        let sampler = MechanismSampler::new(&gm);
        let dim = sampler.dim();
        // A uniform arbitrarily close to 1 must resolve to a valid output via the
        // exact-1.0 tail, never fall off the table.
        let almost_one = f64::from_bits(1.0f64.to_bits() - 1);
        for j in 0..dim {
            assert_eq!(sampler.sample_from_uniform(j, almost_one), dim - 1);
        }
    }

    #[test]
    fn direct_geometric_sampler_matches_the_matrix() {
        let n = 5;
        let alpha = a(0.7);
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 200_000;
        let input = 1;
        let mut counts = vec![0usize; n + 1];
        for _ in 0..trials {
            counts[sample_geometric_direct(n, alpha, input, &mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / trials as f64;
            let expected = gm.matrix().prob(i, input);
            assert!(
                (empirical - expected).abs() < 0.01,
                "output {i}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn privatize_maps_each_count() {
        let em = ExplicitFairMechanism::new(3, a(0.6)).unwrap();
        let sampler = MechanismSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(3);
        let outputs = sampler.privatize(&[0, 1, 2, 3, 3, 0], &mut rng);
        assert_eq!(outputs.len(), 6);
        assert!(outputs.iter().all(|&o| o <= 3));

        let alias = AliasSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(3);
        let outputs = alias.privatize(&[0, 1, 2, 3, 3, 0], &mut rng);
        assert_eq!(outputs.len(), 6);
        assert!(outputs.iter().all(|&o| o <= 3));
    }

    #[test]
    fn sampler_dim_matches_mechanism() {
        let em = ExplicitFairMechanism::new(6, a(0.5)).unwrap();
        assert_eq!(MechanismSampler::new(em.matrix()).dim(), 7);
        assert_eq!(AliasSampler::new(em.matrix()).dim(), 7);
    }

    #[test]
    fn alpha_one_direct_sampler_hits_the_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let out = sample_geometric_direct(4, a(1.0), 2, &mut rng);
            assert!(out == 0 || out == 4);
        }
    }
}

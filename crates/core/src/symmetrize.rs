//! The symmetrisation construction of Theorem 1.
//!
//! Given any mechanism `M`, the centro-symmetric reflection `M^S` defined by
//! `(M^S)_{i,j} = M_{n−i,n−j}` satisfies exactly the same properties, and the average
//! `M* = ½(M + M^S)` is symmetric, keeps every property of `M`, preserves
//! differential privacy, and achieves exactly the same `L0` objective value (its
//! trace is unchanged).  This is why symmetry is "free": it never costs anything to
//! add to the requested property set.

use crate::matrix::Mechanism;

/// The centro-symmetric reflection `M^S` with `(M^S)[i][j] = M[n−i][n−j]`.
pub fn reflect(mechanism: &Mechanism) -> Mechanism {
    let n = mechanism.group_size();
    let dim = mechanism.dim();
    let mut entries = vec![0.0; dim * dim];
    for i in 0..dim {
        for j in 0..dim {
            entries[i * dim + j] = mechanism.prob(n - i, n - j);
        }
    }
    Mechanism::from_row_major_unchecked(n, entries)
}

/// Theorem 1: the symmetrised mechanism `M* = ½(M + M^S)`.
pub fn symmetrize(mechanism: &Mechanism) -> Mechanism {
    let n = mechanism.group_size();
    let dim = mechanism.dim();
    let reflected = reflect(mechanism);
    let mut entries = vec![0.0; dim * dim];
    for i in 0..dim {
        for j in 0..dim {
            entries[i * dim + j] = 0.5 * (mechanism.prob(i, j) + reflected.prob(i, j));
        }
    }
    Mechanism::from_row_major_unchecked(n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::Alpha;
    use crate::matrix::Mechanism;
    use crate::objective::rescaled_l0;
    use crate::properties::Property;

    /// An intentionally asymmetric DP mechanism for testing: an equal mixture of the
    /// Geometric Mechanism and an input-oblivious mechanism with a skewed output
    /// distribution.  Mixtures of α-DP mechanisms are α-DP (ratios of sums stay within
    /// the per-term bounds), and the skewed component breaks centro-symmetry.
    fn asymmetric_dp_mechanism() -> (Mechanism, Alpha) {
        let alpha = Alpha::new(0.8).unwrap();
        let n = 4;
        let gm = crate::mechanisms::GeometricMechanism::new(n, alpha).unwrap();
        let skew_total: f64 = (0..=n).map(|i| (i + 1) as f64).sum();
        let m = Mechanism::from_fn(n, |i, j| {
            0.5 * gm.matrix().prob(i, j) + 0.5 * (i + 1) as f64 / skew_total
        })
        .unwrap();
        (m, alpha)
    }

    #[test]
    fn reflection_is_an_involution() {
        let (m, _) = asymmetric_dp_mechanism();
        let twice = reflect(&reflect(&m));
        for i in 0..m.dim() {
            for j in 0..m.dim() {
                assert!((m.prob(i, j) - twice.prob(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn symmetrized_mechanism_is_symmetric_and_stochastic() {
        let (m, alpha) = asymmetric_dp_mechanism();
        assert!(!Property::Symmetry.holds(&m, 1e-9));
        let sym = symmetrize(&m);
        assert!(Property::Symmetry.holds(&sym, 1e-12));
        assert!(sym.is_column_stochastic(1e-9));
        // Theorem 1(i): differential privacy is preserved.
        assert!(m.satisfies_dp(alpha, 1e-9));
        assert!(sym.satisfies_dp(alpha, 1e-9));
    }

    #[test]
    fn objective_value_is_unchanged() {
        let (m, _) = asymmetric_dp_mechanism();
        let sym = symmetrize(&m);
        assert!((m.trace() - sym.trace()).abs() < 1e-12);
        assert!((rescaled_l0(&m) - rescaled_l0(&sym)).abs() < 1e-12);
    }

    #[test]
    fn row_and_column_properties_are_preserved() {
        let (m, _) = asymmetric_dp_mechanism();
        let sym = symmetrize(&m);
        for property in [
            Property::RowHonesty,
            Property::RowMonotonicity,
            Property::ColumnHonesty,
            Property::ColumnMonotonicity,
            Property::WeakHonesty,
        ] {
            if property.holds(&m, 1e-9) {
                assert!(
                    property.holds(&sym, 1e-9),
                    "{property} lost by symmetrisation"
                );
            }
        }
    }

    #[test]
    fn symmetrizing_a_symmetric_mechanism_is_a_no_op() {
        let em = crate::mechanisms::ExplicitFairMechanism::new(5, Alpha::new(0.7).unwrap())
            .unwrap()
            .into_matrix();
        let sym = symmetrize(&em);
        for i in 0..em.dim() {
            for j in 0..em.dim() {
                assert!((em.prob(i, j) - sym.prob(i, j)).abs() < 1e-15);
            }
        }
    }
}

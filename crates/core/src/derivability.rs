//! The Gupte–Sundararajan derivability test (Section IV-D).
//!
//! Gupte and Sundararajan give a simple test for whether a mechanism `P` can be
//! obtained from the Geometric Mechanism by post-processing (first run GM, then remap
//! its output through a randomised function): every set of three adjacent entries in
//! a row must satisfy
//!
//! ```text
//! (Pr[i|j] − α·Pr[i|j−1])  ≥  α · (Pr[i|j+1] − α·Pr[i|j])
//! ```
//!
//! The paper uses this test to show that the constrained mechanisms WM and EM are
//! *not* trivial modifications of GM: the condition fails for them whenever `n > 1`.

use crate::alpha::Alpha;
use crate::matrix::Mechanism;

/// A single violation of the derivability condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivabilityViolation {
    /// Output (row) index `i`.
    pub output: usize,
    /// The middle input (column) index `j` of the violating triple `(j−1, j, j+1)`.
    pub input: usize,
    /// Left-hand side of the condition.
    pub lhs: f64,
    /// Right-hand side of the condition.
    pub rhs: f64,
}

/// Check the Gupte–Sundararajan condition on every adjacent triple of columns.
/// Returns all violations (empty ⇒ the mechanism is derivable from GM by
/// post-processing).
pub fn derivability_violations(
    mechanism: &Mechanism,
    alpha: Alpha,
    tolerance: f64,
) -> Vec<DerivabilityViolation> {
    let a = alpha.value();
    let n = mechanism.group_size();
    let mut violations = Vec::new();
    for i in 0..mechanism.dim() {
        for j in 1..n {
            let lhs = mechanism.prob(i, j) - a * mechanism.prob(i, j - 1);
            let rhs = a * (mechanism.prob(i, j + 1) - a * mechanism.prob(i, j));
            if lhs + tolerance < rhs {
                violations.push(DerivabilityViolation {
                    output: i,
                    input: j,
                    lhs,
                    rhs,
                });
            }
        }
    }
    violations
}

/// Whether the mechanism can be derived from the Geometric Mechanism by
/// post-processing (no violations of the Gupte–Sundararajan condition).
pub fn is_derivable_from_geometric(mechanism: &Mechanism, alpha: Alpha, tolerance: f64) -> bool {
    derivability_violations(mechanism, alpha, tolerance).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{ExplicitFairMechanism, GeometricMechanism, UniformMechanism};

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn gm_is_trivially_derivable_from_itself() {
        for n in [2usize, 5, 9] {
            for alpha in [0.5, 0.9] {
                let gm = GeometricMechanism::new(n, a(alpha)).unwrap();
                assert!(
                    is_derivable_from_geometric(gm.matrix(), a(alpha), 1e-9),
                    "n={n} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn em_is_not_derivable_for_n_above_one() {
        // Section IV-D: for EM, Pr[2|0] = Pr[2|1] = y*alpha while Pr[2|2] = y, and the
        // condition reduces to 1 >= 1 + alpha, which is false for alpha > 0.
        for n in [2usize, 3, 7, 10] {
            for alpha in [0.5, 0.62, 0.9] {
                let em = ExplicitFairMechanism::new(n, a(alpha)).unwrap();
                let violations = derivability_violations(em.matrix(), a(alpha), 1e-9);
                assert!(!violations.is_empty(), "n={n} alpha={alpha}");
            }
        }
    }

    #[test]
    fn em_is_derivable_for_n_equal_one() {
        // For n = 1 there are no interior triples, so the condition is vacuous (and
        // indeed EM equals GM equals randomized response).
        let em = ExplicitFairMechanism::new(1, a(0.8)).unwrap();
        assert!(is_derivable_from_geometric(em.matrix(), a(0.8), 1e-9));
    }

    #[test]
    fn uniform_mechanism_is_not_derivable_for_alpha_below_one() {
        // UM has all entries equal; lhs = (1-alpha)/(n+1), rhs = alpha(1-alpha)/(n+1),
        // so the condition *holds* (lhs >= rhs).  UM is indeed derivable from GM: just
        // ignore GM's output and sample uniformly.
        let um = UniformMechanism::new(4).unwrap();
        assert!(is_derivable_from_geometric(um.matrix(), a(0.7), 1e-9));
    }

    #[test]
    fn violation_report_carries_the_witness_triple() {
        let em = ExplicitFairMechanism::new(4, a(0.9)).unwrap();
        let violations = derivability_violations(em.matrix(), a(0.9), 1e-9);
        let witness = violations
            .iter()
            .find(|v| v.output == 2 && v.input == 1)
            .expect("the paper's witness triple (row 2, columns 0..2) must violate");
        assert!(witness.lhs < witness.rhs);
    }
}

//! Differential coverage for the dual-form solve path at the design layer:
//! a forced [`LpForm::Dual`] solve must agree with a forced `Primal` solve —
//! same objective to 1e-9 and the same achieved `PropertyReport` over the
//! requested closure — across random property subsets and n ∈ {8, 16}, and
//! whenever the dual path actually ran, the primal basis it recovers through
//! complementary slackness must warm-start a primal re-solve with zero pivots.

use cpm_core::prelude::*;
use cpm_core::properties::PropertySet;
use cpm_simplex::LpForm;
use proptest::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// The constrained L0 problem for one `(n, α, properties)` triple.
fn problem(n: usize, alpha: f64, properties: PropertySet) -> DesignProblem {
    DesignProblem::constrained(n, a(alpha), Objective::l0(), properties)
}

fn solve_as(problem: &DesignProblem, form: LpForm) -> DesignSolution {
    problem
        .solve_with(&problem.recommended_options().with_form(form))
        .expect("differential solves must succeed")
}

/// When the dual path produced this solution (it can decline — e.g. presolve
/// left two-sided bounds — and defer to the primal path, which reports
/// `Primal`), its recovered basis must re-solve the same problem under the
/// primal form as a pure warm start: accepted, no Phase 1, and zero pivots of
/// either kind — the complementary-slackness mapping is exact, not heuristic.
fn assert_zero_pivot_reseed(problem: &DesignProblem, dual: &DesignSolution) {
    if dual.solver_stats.form != LpForm::Dual {
        return;
    }
    let basis = dual
        .optimal_basis
        .clone()
        .expect("a dual-form solve certifies and reports a primal basis");
    let reseeded = problem
        .solve_with(
            &problem
                .recommended_options()
                .with_form(LpForm::Primal)
                .with_warm_basis(Some(basis)),
        )
        .expect("reseeded solve must succeed");
    assert!(
        reseeded.solver_stats.warm_started,
        "the dual path's recovered basis must be warm-start-valid"
    );
    assert_eq!(reseeded.solver_stats.phase1_iterations, 0);
    assert_eq!(
        reseeded.solver_stats.dual_iterations + reseeded.solver_stats.phase2_iterations,
        0,
        "an optimal basis re-solves in zero pivots"
    );
    assert!((reseeded.objective_value - dual.objective_value).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random draws over all 128 property subsets × n ∈ {8, 16} (n = 16 at a
    /// third of the rate — the differential logic is identical and a debug
    /// n = 16 constrained solve costs seconds): forced dual and forced primal
    /// agree on the objective and on every requested property, and the dual
    /// path's basis warm-starts a zero-pivot primal re-solve.
    #[test]
    fn dual_form_agrees_with_primal_across_property_subsets(
        subset_index in 0usize..128,
        alpha in 0.55f64..0.95,
        pick_n in 0usize..3,
    ) {
        let n = [8usize, 8, 16][pick_n];
        let properties = PropertySet::power_set()[subset_index];
        let problem = problem(n, alpha, properties);

        let primal = solve_as(&problem, LpForm::Primal);
        let dual = solve_as(&problem, LpForm::Dual);

        prop_assert_eq!(primal.solver_stats.form, LpForm::Primal);
        prop_assert!(
            (dual.objective_value - primal.objective_value).abs() < 1e-9,
            "objective: dual {} vs primal {}",
            dual.objective_value,
            primal.objective_value
        );
        // Degenerate LPs have alternate optimal vertices, and an incidental
        // *unrequested* property can hold at one vertex and not another — so
        // the reports are compared over the requested closure (where both
        // solves are constrained) rather than over all seven properties.
        let dual_report = PropertyReport::evaluate(&dual.mechanism, 1e-6);
        let primal_report = PropertyReport::evaluate(&primal.mechanism, 1e-6);
        for property in properties.closure().iter() {
            prop_assert!(
                dual_report.holds(property) == primal_report.holds(property),
                "requested property {} must agree across forms",
                property.short_name()
            );
        }
        prop_assert!(dual.mechanism.satisfies_dp(a(alpha), 1e-6));
        prop_assert!(properties.all_hold(&dual.mechanism, 1e-6));

        assert_zero_pivot_reseed(&problem, &dual);
    }
}

/// The unconstrained BASICDP LP is unboxed and tall, so a forced dual solve
/// must actually take the dual path — and its recovered basis is exact.
#[test]
fn unconstrained_dual_form_runs_dual_and_recovers_an_exact_basis() {
    for n in [8usize, 16] {
        // Disable the closed-form crash seed so the dual walk is exercised
        // rather than certified away in zero pivots.
        let problem =
            DesignProblem::unconstrained(n, a(0.9), Objective::l0()).with_crash_seed(false);
        let primal = solve_as(&problem, LpForm::Primal);
        let dual = solve_as(&problem, LpForm::Dual);

        assert_eq!(dual.solver_stats.form, LpForm::Dual);
        assert_eq!(
            dual.solver_stats.phase1_iterations, 0,
            "the dual starts feasible: no Phase 1"
        );
        assert!((dual.objective_value - primal.objective_value).abs() < 1e-9);
        assert_zero_pivot_reseed(&problem, &dual);
    }
}

/// The WM family (the paper's central constrained design) at n = 16, checked
/// deterministically: both forms reach the same optimum and the dual path's
/// basis round-trips.
#[test]
fn wm_family_agrees_across_forms() {
    let problem = problem(16, 0.9, wm_properties());
    let primal = solve_as(&problem, LpForm::Primal);
    let dual = solve_as(&problem, LpForm::Dual);
    assert!((dual.objective_value - primal.objective_value).abs() < 1e-9);
    assert!(wm_properties().all_hold(&dual.mechanism, 1e-6));
    assert_zero_pivot_reseed(&problem, &dual);
}

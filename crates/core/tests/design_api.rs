//! Integration tests for the typed design path (`MechanismSpec` →
//! `DesignedMechanism`):
//!
//! 1. **Property tests** — `MechanismSpec` ↔ JSON ↔ `SpecKey` round trips are
//!    exact for randomly generated specs (bit-exact α, every property subset,
//!    every objective family member).
//! 2. **Golden compatibility** — the new API reproduces the pre-redesign
//!    pipeline (`select_mechanism` + closed forms / property-constrained LP +
//!    symmetrisation) **bit for bit** across all 128 property subsets at two
//!    `(n, α)` points, one in each privacy regime.

use cpm_core::prelude::*;
use proptest::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// The pre-redesign design pipeline, reconstructed from its public pieces: the
/// Figure-5 selection, the closed-form constructions, and the property-set LPs
/// (WH-LP solves with `{WH, RM, S}`, WM with `{WH, RM, CM, S}`), each LP result
/// symmetrised.  This is exactly what `design_for_properties` did before the
/// redesign, so it is the golden reference the new path must match bit for bit.
fn golden_design(requested: PropertySet, n: usize, alpha: Alpha) -> (MechanismChoice, Mechanism) {
    let choice = select_mechanism(requested, n, alpha);
    let solve = |properties: PropertySet| {
        let solution = optimal_constrained(n, alpha, Objective::l0(), properties)
            .expect("golden LP must solve");
        symmetrize(&solution.mechanism)
    };
    let mechanism = match choice {
        MechanismChoice::Geometric => GeometricMechanism::new(n, alpha).unwrap().into_matrix(),
        MechanismChoice::ExplicitFair => {
            ExplicitFairMechanism::new(n, alpha).unwrap().into_matrix()
        }
        MechanismChoice::Uniform => UniformMechanism::new(n).unwrap().into_matrix(),
        MechanismChoice::WeakHonestLp => solve(
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::RowMonotonicity)
                .with(Property::Symmetry),
        ),
        MechanismChoice::WeakHonestColumnMonotoneLp => solve(
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::RowMonotonicity)
                .with(Property::ColumnMonotonicity)
                .with(Property::Symmetry),
        ),
    };
    (choice, mechanism)
}

/// All 128 property subsets at two `(n, α)` points: the strong-privacy regime
/// (α > 1/2, where the LP choices actually run the simplex) and the weak
/// regime (α ≤ 1/2, where everything short-circuits to GM/EM).  The new API
/// must reproduce the golden pipeline bit for bit, and the deprecated
/// `design_for_properties` shim must agree with both.
#[test]
fn golden_all_128_subsets_reproduce_the_old_pipeline_bit_for_bit() {
    for (n, alpha) in [(3usize, a(0.85)), (4, a(0.5))] {
        for subset in PropertySet::power_set() {
            let (golden_choice, golden) = golden_design(subset, n, alpha);

            let designed = MechanismSpec::new(n, alpha)
                .properties(subset)
                .build()
                .unwrap()
                .design()
                .unwrap_or_else(|e| panic!("subset {subset} at n={n}: {e}"));
            assert_eq!(
                designed.choice(),
                Some(golden_choice),
                "subset {subset} at n={n}"
            );
            assert_eq!(
                designed.mechanism().entries(),
                golden.entries(),
                "subset {subset} at n={n}, α={alpha}: new API diverged from the \
                 pre-redesign pipeline"
            );

            #[allow(deprecated)]
            let (shim_choice, shim) = design_for_properties(subset, n, alpha).unwrap();
            assert_eq!(shim_choice, golden_choice, "subset {subset} at n={n}");
            assert_eq!(
                shim.entries(),
                golden.entries(),
                "subset {subset} at n={n}: deprecated shim diverged"
            );
        }
    }
}

/// The designed artifact's serde round trip is exact for a representative of
/// every Figure-5 branch (closed forms and both LP choices).
#[test]
fn designed_mechanism_serde_round_trip_covers_every_flowchart_branch() {
    let cases: Vec<(usize, f64, PropertySet)> = vec![
        (4, 0.5, PropertySet::empty()), // GM (weak regime)
        (4, 0.9, PropertySet::empty().with(Property::Fairness)), // EM
        (3, 0.9, PropertySet::empty().with(Property::WeakHonesty)), // WH-LP
        (
            4,
            0.9,
            PropertySet::empty().with(Property::ColumnMonotonicity),
        ), // WM LP
    ];
    for (n, alpha, properties) in cases {
        let designed = MechanismSpec::new(n, a(alpha))
            .properties(properties)
            .build()
            .unwrap()
            .design()
            .unwrap();
        let text = serde_json::to_string(&designed).unwrap();
        let back: DesignedMechanism = serde_json::from_str(&text).unwrap();
        assert_eq!(back, designed, "n={n} α={alpha} {properties}");
        assert_eq!(back.key(), designed.key());
        assert_eq!(back.mechanism().entries(), designed.mechanism().entries());
        assert_eq!(back.choice(), designed.choice());
        assert_eq!(back.score(), designed.score());
    }
}

fn objective_from(index: u8, d: usize) -> ObjectiveKey {
    match index % 4 {
        0 => ObjectiveKey::L0,
        1 => ObjectiveKey::L0Beyond(d),
        2 => ObjectiveKey::L1,
        _ => ObjectiveKey::L2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Spec → JSON → spec is the identity, and the key survives unchanged —
    /// for arbitrary n, bit patterns of α, property subsets, objectives, and
    /// tolerances.
    #[test]
    fn prop_spec_json_round_trip_is_exact(
        n in 1usize..200,
        alpha_raw in 1e-6f64..1.0,
        bits in 0u8..128,
        objective_index in 0u8..4,
        d_frac in 0.0f64..1.0,
        tolerance_exp in 1.0f64..12.0,
    ) {
        let alpha = Alpha::new(alpha_raw).unwrap();
        let properties: PropertySet = PropertySet::power_set()[bits as usize];
        let d = ((n as f64) * d_frac) as usize; // ≤ n, so the spec validates
        let objective = objective_from(objective_index, d);
        let tolerance = 10f64.powf(-tolerance_exp);

        let spec = MechanismSpec::new(n, alpha)
            .properties(properties)
            .objective(objective)
            .tolerance(tolerance)
            .build()
            .expect("spec is valid by construction");

        let text = serde_json::to_string(&spec).unwrap();
        let back: MechanismSpec = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.key(), spec.key());
        prop_assert_eq!(back.alpha().key_bits(), alpha.key_bits());

        // The key round trips on its own, too.
        let key_text = serde_json::to_string(&spec.key()).unwrap();
        let key_back: SpecKey = serde_json::from_str(&key_text).unwrap();
        prop_assert_eq!(key_back, spec.key());
    }

    /// Two specs share a key exactly when their four key components agree —
    /// tolerance and solver overrides never affect cache identity.
    #[test]
    fn prop_spec_key_equality_matches_component_equality(
        n1 in 1usize..40, n2 in 1usize..40,
        alpha_raw in 1e-3f64..1.0,
        bits1 in 0u8..128, bits2 in 0u8..128,
        objective_index in 0u8..4,
        tolerance_exp in 1.0f64..12.0,
    ) {
        let alpha = Alpha::new(alpha_raw).unwrap();
        let objective = objective_from(objective_index, 0);
        let spec1 = MechanismSpec::new(n1, alpha)
            .properties(PropertySet::power_set()[bits1 as usize])
            .objective(objective);
        let spec2 = MechanismSpec::new(n2, alpha)
            .properties(PropertySet::power_set()[bits2 as usize])
            .objective(objective)
            .tolerance(10f64.powf(-tolerance_exp));
        let keys_equal = spec1.key() == spec2.key();
        let components_equal = n1 == n2 && bits1 == bits2;
        prop_assert_eq!(keys_equal, components_equal);
    }
}

//! Differential coverage for the LP presolve pass at the design layer: a
//! presolved solve must agree with an un-presolved solve of the same design
//! problem — same objective (within tolerance), the same achieved
//! `PropertyReport` over the requested closure, and a postsolved
//! `optimal_basis` that a warm re-solve accepts — across the 128 property
//! subsets and n ∈ {8, 16}.

use cpm_core::prelude::*;
use cpm_core::properties::PropertySet;
use cpm_simplex::SolveOptions;
use proptest::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// The constrained L0 problem for one `(n, α, properties)` triple.
fn problem(n: usize, alpha: f64, properties: PropertySet) -> DesignProblem {
    DesignProblem::constrained(n, a(alpha), Objective::l0(), properties)
}

fn options(problem: &DesignProblem, presolve: bool) -> SolveOptions {
    SolveOptions {
        presolve,
        ..problem.recommended_options()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random α × all 128 property subsets × n ∈ {8, 16}: presolved and
    /// un-presolved solves agree on the objective, on every property in the
    /// requested closure, and the presolved solve's postsolved basis seeds a
    /// warm re-solve that lands on the same optimum.  (n = 16 is drawn at a
    /// third of the rate of n = 8 — a debug-mode n = 16 constrained solve
    /// costs seconds, and the reduction logic it exercises is identical.)
    #[test]
    fn presolved_solves_agree_with_unpresolved_solves(
        subset_index in 0usize..128,
        alpha in 0.55f64..0.95,
        pick_n in 0usize..3,
    ) {
        let n = [8usize, 8, 16][pick_n];
        let properties = PropertySet::power_set()[subset_index];
        let p = problem(n, alpha, properties);

        let presolved = p.solve_with(&options(&p, true)).expect("presolved solve");
        let plain = p.solve_with(&options(&p, false)).expect("un-presolved solve");

        prop_assert!(
            (presolved.objective_value - plain.objective_value).abs() < 1e-6,
            "objective: presolved {} vs plain {}",
            presolved.objective_value,
            plain.objective_value
        );
        prop_assert_eq!(plain.solver_stats.presolve_rows_removed, 0);
        prop_assert_eq!(plain.solver_stats.presolve_cols_removed, 0);

        // Degenerate LPs have alternate optimal vertices, and an incidental
        // *unrequested* property can hold at one vertex and not another — so
        // the reports are compared over the requested closure (where both
        // solves are constrained) rather than over all seven properties.
        let presolved_report = PropertyReport::evaluate(&presolved.mechanism, 1e-6);
        let plain_report = PropertyReport::evaluate(&plain.mechanism, 1e-6);
        for property in properties.closure().iter() {
            prop_assert!(
                presolved_report.holds(property) && plain_report.holds(property),
                "requested property {} must hold on both solves",
                property.short_name()
            );
        }
        prop_assert!(presolved.mechanism.satisfies_dp(a(alpha), 1e-6));

        // Postsolved basis validity: the basis the presolved solve reports is
        // expressed in the *original* standard form, so an un-presolved warm
        // re-solve must accept it (or cleanly fall back) and reach the same
        // objective.
        prop_assert!(presolved.optimal_basis.is_some(),
            "presolved LP solves must still report a postsolved basis");
        let plain_options = options(&p, false);
        let reseeded = p
            .with_warm_basis(presolved.optimal_basis.clone())
            .solve_with(&plain_options)
            .expect("warm re-solve from a postsolved basis");
        prop_assert!(
            (reseeded.objective_value - plain.objective_value).abs() < 1e-6,
            "re-seeded objective {} vs plain {}",
            reseeded.objective_value,
            plain.objective_value
        );
        if reseeded.solver_stats.warm_started {
            prop_assert_eq!(reseeded.solver_stats.phase1_iterations, 0);
        }
    }
}

/// The weak-honesty singleton rows (`ρ_jj ≥ threshold`) are exactly the shape
/// presolve folds into variable bounds, so the stats must attribute removed
/// rows on a WH-constrained design — and the default solve path (presolve on)
/// must report the same optimum as the paper's closed form did before.
#[test]
fn weak_honesty_designs_report_presolve_reductions() {
    let p = problem(8, 0.76, wm_properties());
    let solved = p.solve().unwrap();
    assert!(
        solved.solver_stats.presolve_rows_removed > 0,
        "WH singleton rows should fold into bounds (stats: {:?})",
        solved.solver_stats
    );
    let plain = p.solve_with(&options(&p, false)).unwrap();
    assert!((solved.objective_value - plain.objective_value).abs() < 1e-9);
}

/// Exhaustive sweep at n = 4: every one of the 128 property subsets solved
/// with and without presolve at one α, agreeing on the objective.  The group
/// size is kept small so the sweep stays debug-mode cheap; the proptest above
/// covers n ∈ {8, 16} on sampled subsets.
#[test]
fn all_128_subsets_agree_at_n4() {
    for (index, &properties) in PropertySet::power_set().iter().enumerate() {
        let p = problem(4, 0.76, properties);
        let presolved = p.solve_with(&options(&p, true)).unwrap();
        let plain = p.solve_with(&options(&p, false)).unwrap();
        assert!(
            (presolved.objective_value - plain.objective_value).abs() < 1e-7,
            "subset {index} ({properties}): presolved {} vs plain {}",
            presolved.objective_value,
            plain.objective_value
        );
    }
}

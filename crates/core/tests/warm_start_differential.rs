//! Differential coverage for dual-simplex warm starts at the design layer:
//! a warm-started α-neighbour re-solve must agree with a cold primal solve —
//! same objective (within tolerance) and the same achieved `PropertyReport` —
//! across random α pairs and all property subsets, and every unusable seed
//! must fall back to the cold path rather than erroring.

use cpm_core::prelude::*;
use cpm_core::properties::PropertySet;
use proptest::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// The constrained L0 problem for one `(n, α, properties)` triple.
fn problem(n: usize, alpha: f64, properties: PropertySet) -> DesignProblem {
    DesignProblem::constrained(n, a(alpha), Objective::l0(), properties)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random α-neighbour pairs × all 128 property subsets × n ∈ {8, 16}:
    /// the warm re-solve agrees with the cold solve on the objective and on
    /// every achieved property.  (n = 16 is drawn at a third of the rate of
    /// n = 8 — a debug-mode n = 16 constrained solve costs seconds, and the
    /// differential logic it exercises is identical.)
    #[test]
    fn warm_resolves_agree_with_cold_solves(
        subset_index in 0usize..128,
        base_alpha in 0.55f64..0.95,
        delta in -0.04f64..0.04,
        pick_n in 0usize..3,
    ) {
        let n = [8usize, 8, 16][pick_n];
        let properties = PropertySet::power_set()[subset_index];
        let neighbour_alpha = (base_alpha + delta).clamp(0.51, 0.99);

        let donor = problem(n, base_alpha, properties)
            .solve()
            .expect("donor solve");
        let seed = donor.optimal_basis.clone();
        prop_assert!(seed.is_some(), "LP solves must report their basis");

        let cold = problem(n, neighbour_alpha, properties)
            .solve()
            .expect("cold solve");
        let warm = problem(n, neighbour_alpha, properties)
            .with_warm_basis(seed)
            .solve()
            .expect("warm solve");

        prop_assert!(
            (warm.objective_value - cold.objective_value).abs() < 1e-6,
            "objective: warm {} vs cold {}",
            warm.objective_value,
            cold.objective_value
        );
        // Degenerate LPs have alternate optimal vertices, and an incidental
        // *unrequested* property can hold at one vertex and not another — so
        // the reports are compared over the requested closure (where both
        // solves are constrained) rather than over all seven properties.
        let warm_report = PropertyReport::evaluate(&warm.mechanism, 1e-6);
        let cold_report = PropertyReport::evaluate(&cold.mechanism, 1e-6);
        for property in properties.closure().iter() {
            prop_assert!(
                warm_report.holds(property) == cold_report.holds(property),
                "requested property {} must agree",
                property.short_name()
            );
        }
        prop_assert!(warm.mechanism.satisfies_dp(a(neighbour_alpha), 1e-6));
        prop_assert!(properties.all_hold(&warm.mechanism, 1e-6));

        // A warm start may only ever save pivots, never add a Phase 1.
        if warm.solver_stats.warm_started {
            prop_assert_eq!(warm.solver_stats.phase1_iterations, 0);
        }
    }
}

#[test]
fn near_neighbour_warm_starts_take_the_dual_path_and_save_pivots() {
    let properties = wm_properties();
    let donor = problem(16, 0.90, properties).solve().unwrap();
    let cold = problem(16, 0.905, properties).solve().unwrap();
    let warm = problem(16, 0.905, properties)
        .with_warm_basis(donor.optimal_basis.clone())
        .solve()
        .unwrap();

    assert!(
        warm.solver_stats.warm_started,
        "a near α-neighbour seed must take the warm path"
    );
    let cold_pivots = cold.solver_stats.phase1_iterations + cold.solver_stats.phase2_iterations;
    let warm_pivots = warm.solver_stats.phase2_iterations + warm.solver_stats.dual_iterations;
    assert!(
        warm_pivots * 4 < cold_pivots,
        "warm re-solve must cost < 25% of the cold solve's pivots \
         (warm {warm_pivots} vs cold {cold_pivots})"
    );
    assert!((warm.objective_value - cold.objective_value).abs() < 1e-9);
}

#[test]
fn mismatched_and_cross_objective_seeds_fall_back_to_the_primal_path() {
    let properties = wm_properties();
    let cold = problem(8, 0.9, properties).solve().unwrap();

    // A basis from a differently-shaped LP (wrong n): wrong length, rejected
    // up front.
    let foreign = problem(4, 0.9, properties).solve().unwrap();
    let fallback = problem(8, 0.9, properties)
        .with_warm_basis(foreign.optimal_basis)
        .solve()
        .unwrap();
    assert!(!fallback.solver_stats.warm_started);
    assert!((fallback.objective_value - cold.objective_value).abs() < 1e-9);

    // A same-shape basis optimised for a *different objective* is generally
    // dual-infeasible under L0 costs; whether it squeaks past the relaxed
    // check or not, the answer must match the cold solve exactly.
    let l2_donor = DesignProblem::constrained(8, a(0.9), Objective::l2(), properties)
        .solve()
        .unwrap();
    let cross = problem(8, 0.9, properties)
        .with_warm_basis(l2_donor.optimal_basis)
        .solve()
        .unwrap();
    assert!((cross.objective_value - cold.objective_value).abs() < 1e-6);
}

#[test]
fn mechanism_spec_threads_the_hint_and_the_artifact_carries_its_basis() {
    // The WM family at n = 8 runs the LP; its artifact must expose a basis.
    let donor = MechanismSpec::new(8, a(0.90))
        .properties(wm_properties())
        .build()
        .unwrap()
        .design()
        .unwrap();
    let basis = donor
        .optimal_basis()
        .expect("LP-designed artifact carries its optimal basis")
        .to_vec();

    let cold = MechanismSpec::new(8, a(0.905))
        .properties(wm_properties())
        .build()
        .unwrap()
        .design()
        .unwrap();
    let warm = MechanismSpec::new(8, a(0.905))
        .properties(wm_properties())
        .warm_start(Some(basis))
        .build()
        .unwrap()
        .design()
        .unwrap();

    assert!((warm.score() - cold.score()).abs() < 1e-9);
    assert!(warm.requested_satisfied() && cold.requested_satisfied());
    assert_eq!(warm.choice(), cold.choice());
    // The hint is transient: equal specs, equal serde forms.
    assert_eq!(warm.spec(), cold.spec());
    let warm_json = serde_json::to_string(warm.spec()).unwrap();
    let cold_json = serde_json::to_string(cold.spec()).unwrap();
    assert_eq!(warm_json, cold_json);

    // Closed-form designs have no basis to offer.
    let gm = MechanismSpec::new(8, a(0.5))
        .build()
        .unwrap()
        .design()
        .unwrap();
    assert!(gm.optimal_basis().is_none());
}

#[test]
fn designed_mechanism_serde_round_trips_the_basis_exactly() {
    let designed = MechanismSpec::new(6, a(0.9))
        .properties(wm_properties())
        .build()
        .unwrap()
        .design()
        .unwrap();
    assert!(designed.optimal_basis().is_some());
    let text = serde_json::to_string(&designed).unwrap();
    let back: DesignedMechanism = serde_json::from_str(&text).unwrap();
    assert_eq!(back, designed);
    assert_eq!(back.optimal_basis(), designed.optimal_basis());
}

//! # cpm-wire — compact binary wire primitives
//!
//! A hand-rolled `Serde`-style trait over byte buffers, shared by every binary
//! wire format in the workspace: `cpm-collect`'s `b"CPMR"` report batches and
//! `cpm-serve`'s `b"CPMF"` request/response frames both build on the same
//! primitive codecs and the same 16-byte [`SpecKey`] record, so a key decoded
//! from either format lands on the same bit-exact cache/accumulator identity.
//!
//! The idiom is deliberate (cf. `schemou` in the related `Colabie` repo): no
//! reflection, no schema compiler — each type knows how to [`Wire::put`] itself
//! onto a `Vec<u8>` and [`Wire::take`] itself off a [`Reader`], all integers
//! little-endian, all lengths `u32`-prefixed and validated against the bytes
//! actually present before any allocation is sized.
//!
//! ## Guarantees
//!
//! * **No hostile allocation** — a declared element count is checked against
//!   the remaining payload before a `Vec` is reserved, so a forged length
//!   cannot demand memory the frame does not carry.
//! * **Total validation** — every decoded value is range-checked at the codec
//!   layer ([`take_spec_key`] refuses bad α, undefined property bits, unknown
//!   objective tags, oversized group sizes); decoding never panics on any
//!   byte string.
//! * **Bit exactness** — α travels as its IEEE-754 bit pattern, matching
//!   [`cpm_core::AlphaKey`]'s cache identity exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cpm_core::{Alpha, ObjectiveKey, PropertySet, SpecKey};

/// Bytes of an encoded [`SpecKey`]: `n` (u32), α bits (u64), property bitmask
/// (u8), objective tag (u8), `L0,d` distance (u16).
pub const SPEC_KEY_LEN: usize = 16;

/// Largest group size any binary codec accepts off the wire.  Mirrors the
/// collect-side bound: consumers allocate `O(n)` state per key, so an
/// unvalidated `n` would let a 16-byte record demand gigabytes.
pub const MAX_GROUP_SIZE: usize = 1 << 16;

const OBJ_L0: u8 = 0;
const OBJ_L1: u8 = 1;
const OBJ_L2: u8 = 2;
const OBJ_L0_BEYOND: u8 = 3;

/// Primitive decode failures: the bytes ran out or a value cannot exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the value it declared.
    Truncated {
        /// Bytes the next value needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A declared element count exceeds the bytes remaining in the payload.
    LengthOverrun {
        /// Declared element count.
        declared: usize,
        /// Bytes remaining (each element needs at least one).
        have: usize,
    },
    /// A decoded string is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "payload truncated: needed {needed} bytes, have {have}")
            }
            DecodeError::LengthOverrun { declared, have } => write!(
                f,
                "declared count {declared} exceeds the {have} bytes remaining"
            ),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an immutable payload; every `take` advances it.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Start reading `payload` from its first byte.
    pub fn new(payload: &'a [u8]) -> Self {
        Reader { buf: payload }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether every byte has been consumed (decoders use this to reject
    /// trailing garbage).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                have: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        Ok(self.bytes(N)?.try_into().expect("bytes(N) returns N bytes"))
    }
}

/// The hand-rolled serde trait: append yourself to a byte buffer, or read
/// yourself off a [`Reader`].  Implementations must round-trip bit-exactly.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decode one value, advancing the reader past it.
    fn take(reader: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! wire_int {
    ($($ty:ty),*) => {$(
        impl Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn take(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(<$ty>::from_le_bytes(reader.array()?))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64);

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u8::take(reader)? != 0)
    }
}

/// `f64` travels as its IEEE-754 bit pattern — NaNs, signed zeros, and
/// subnormals all round-trip bit-exactly.
impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn take(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::take(reader)?))
    }
}

/// Sequences carry a `u32` element count, validated against the remaining
/// payload (every element encodes to at least one byte) before any
/// allocation.
impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        debug_assert!(
            self.len() <= u32::MAX as usize,
            "sequence exceeds u32 count"
        );
        (self.len() as u32).put(out);
        for item in self {
            item.put(out);
        }
    }
    fn take(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = u32::take(reader)? as usize;
        if count > reader.remaining() {
            return Err(DecodeError::LengthOverrun {
                declared: count,
                have: reader.remaining(),
            });
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(T::take(reader)?);
        }
        Ok(items)
    }
}

/// Strings are a `u32` byte length plus UTF-8 bytes.
impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        debug_assert!(self.len() <= u32::MAX as usize, "string exceeds u32 length");
        (self.len() as u32).put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::take(reader)? as usize;
        if len > reader.remaining() {
            return Err(DecodeError::LengthOverrun {
                declared: len,
                have: reader.remaining(),
            });
        }
        std::str::from_utf8(reader.bytes(len)?)
            .map(str::to_owned)
            .map_err(|_| DecodeError::BadUtf8)
    }
}

/// [`SpecKey`] codec failures: the bytes decode, but no such key can exist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyError {
    /// The α bits decode to a value outside `(0, 1]`.
    InvalidAlpha(f64),
    /// The property bitmask has undefined bits set.
    InvalidProperties(u8),
    /// The objective tag is unknown, or `d` is inconsistent with it.
    InvalidObjective {
        /// The objective tag byte.
        tag: u8,
        /// The accompanying distance field.
        d: u16,
    },
    /// The group size is zero or exceeds [`MAX_GROUP_SIZE`].
    InvalidGroupSize,
    /// The `L0,d` threshold exceeds the group size (or, on encode, the `u16`
    /// field).
    DistanceTooLarge {
        /// The threshold.
        d: usize,
        /// The group size.
        n: usize,
    },
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::InvalidAlpha(value) => write!(f, "key alpha {value} is outside (0, 1]"),
            KeyError::InvalidProperties(bits) => {
                write!(f, "key property bitmask {bits:#04x} has undefined bits")
            }
            KeyError::InvalidObjective { tag, d } => {
                write!(f, "key objective tag {tag} with d = {d} is invalid")
            }
            KeyError::InvalidGroupSize => {
                write!(f, "key group size n must be in 1..={MAX_GROUP_SIZE}")
            }
            KeyError::DistanceTooLarge { d, n } => {
                write!(f, "key L0,d threshold {d} exceeds group size {n}")
            }
        }
    }
}

impl std::error::Error for KeyError {}

/// Either failure mode of [`take_spec_key`]: the bytes ran out, or they
/// decode to an impossible key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecKeyError {
    /// The primitive layer failed (truncation).
    Decode(DecodeError),
    /// A field failed validation.
    Key(KeyError),
}

impl fmt::Display for SpecKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecKeyError::Decode(e) => e.fmt(f),
            SpecKeyError::Key(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SpecKeyError {}

impl From<DecodeError> for SpecKeyError {
    fn from(e: DecodeError) -> Self {
        SpecKeyError::Decode(e)
    }
}

impl From<KeyError> for SpecKeyError {
    fn from(e: KeyError) -> Self {
        SpecKeyError::Key(e)
    }
}

fn objective_tag(objective: ObjectiveKey) -> (u8, u16) {
    match objective {
        ObjectiveKey::L0 => (OBJ_L0, 0),
        ObjectiveKey::L1 => (OBJ_L1, 0),
        ObjectiveKey::L2 => (OBJ_L2, 0),
        ObjectiveKey::L0Beyond(d) => (OBJ_L0_BEYOND, d as u16),
    }
}

/// Append a [`SpecKey`]'s [`SPEC_KEY_LEN`] bytes to `out`.
///
/// Fails when the key cannot be represented or would be refused on decode:
/// `n` outside `1..=`[`MAX_GROUP_SIZE`], or an `L0,d` threshold beyond `u16`
/// (both far outside any designable mechanism).
pub fn put_spec_key(key: &SpecKey, out: &mut Vec<u8>) -> Result<(), KeyError> {
    if key.n == 0 || key.n > MAX_GROUP_SIZE {
        return Err(KeyError::InvalidGroupSize);
    }
    if let ObjectiveKey::L0Beyond(d) = key.objective {
        if d > u16::MAX as usize {
            return Err(KeyError::DistanceTooLarge { d, n: key.n });
        }
    }
    let (tag, d) = objective_tag(key.objective);
    (key.n as u32).put(out);
    key.alpha.bits().put(out);
    out.push(key.properties.bits());
    out.push(tag);
    d.put(out);
    Ok(())
}

/// Decode one [`SpecKey`], validating every field: group size bound, α range,
/// property bitmask, objective tag/distance consistency.
pub fn take_spec_key(reader: &mut Reader<'_>) -> Result<SpecKey, SpecKeyError> {
    let n = u32::take(reader)? as usize;
    if n == 0 || n > MAX_GROUP_SIZE {
        return Err(KeyError::InvalidGroupSize.into());
    }
    let alpha_value = f64::from_bits(u64::take(reader)?);
    let alpha = Alpha::new(alpha_value).map_err(|_| KeyError::InvalidAlpha(alpha_value))?;
    let bits = u8::take(reader)?;
    let properties = PropertySet::from_bits(bits).ok_or(KeyError::InvalidProperties(bits))?;
    let tag = u8::take(reader)?;
    let d = u16::take(reader)?;
    let objective = match (tag, d) {
        (OBJ_L0, 0) => ObjectiveKey::L0,
        (OBJ_L1, 0) => ObjectiveKey::L1,
        (OBJ_L2, 0) => ObjectiveKey::L2,
        (OBJ_L0_BEYOND, d) => {
            if d as usize > n {
                return Err(KeyError::DistanceTooLarge { d: d as usize, n }.into());
            }
            ObjectiveKey::L0Beyond(d as usize)
        }
        (tag, d) => return Err(KeyError::InvalidObjective { tag, d }.into()),
    };
    Ok(SpecKey::with_objective(n, alpha, properties, objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::Property;
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        0xAAu8.put(&mut out);
        0xBBCCu16.put(&mut out);
        0xDDEE_FF00u32.put(&mut out);
        0x1122_3344_5566_7788u64.put(&mut out);
        (-0.0f64).put(&mut out);
        true.put(&mut out);
        String::from("héllo").put(&mut out);
        vec![1u32, 2, 3].put(&mut out);

        let mut r = Reader::new(&out);
        assert_eq!(u8::take(&mut r).unwrap(), 0xAA);
        assert_eq!(u16::take(&mut r).unwrap(), 0xBBCC);
        assert_eq!(u32::take(&mut r).unwrap(), 0xDDEE_FF00);
        assert_eq!(u64::take(&mut r).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(f64::take(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(bool::take(&mut r).unwrap());
        assert_eq!(String::take(&mut r).unwrap(), "héllo");
        assert_eq!(Vec::<u32>::take(&mut r).unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut out = Vec::new();
        7u64.put(&mut out);
        let mut r = Reader::new(&out[..5]);
        assert_eq!(
            u64::take(&mut r),
            Err(DecodeError::Truncated { needed: 8, have: 5 })
        );
    }

    #[test]
    fn forged_counts_cannot_demand_memory() {
        // A Vec<u64> declaring u32::MAX elements but carrying 4 bytes must be
        // refused before any allocation is sized.
        let mut payload = Vec::new();
        u32::MAX.put(&mut payload);
        payload.extend_from_slice(&[0, 0, 0, 0]);
        let mut r = Reader::new(&payload);
        assert_eq!(
            Vec::<u64>::take(&mut r),
            Err(DecodeError::LengthOverrun {
                declared: u32::MAX as usize,
                have: 4
            })
        );
        // Same for strings.
        let mut payload = Vec::new();
        1_000_000u32.put(&mut payload);
        payload.push(b'x');
        let mut r = Reader::new(&payload);
        assert_eq!(
            String::take(&mut r),
            Err(DecodeError::LengthOverrun {
                declared: 1_000_000,
                have: 1
            })
        );
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut payload = Vec::new();
        2u32.put(&mut payload);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&payload);
        assert_eq!(String::take(&mut r), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn spec_keys_round_trip_across_objectives_and_properties() {
        let keys = [
            SpecKey::new(8, Alpha::new(0.9).unwrap(), PropertySet::empty()),
            SpecKey::with_objective(
                32,
                Alpha::new(0.1).unwrap(),
                PropertySet::empty().with(Property::WeakHonesty),
                ObjectiveKey::L1,
            ),
            SpecKey::with_objective(
                16,
                Alpha::new(0.5).unwrap(),
                PropertySet::empty(),
                ObjectiveKey::L0Beyond(3),
            ),
        ];
        for key in keys {
            let mut out = Vec::new();
            put_spec_key(&key, &mut out).unwrap();
            assert_eq!(out.len(), SPEC_KEY_LEN);
            let mut r = Reader::new(&out);
            assert_eq!(take_spec_key(&mut r).unwrap(), key);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn key_validation_names_the_bad_field() {
        let key = SpecKey::new(8, Alpha::new(0.9).unwrap(), PropertySet::empty());
        let mut good = Vec::new();
        put_spec_key(&key, &mut good).unwrap();

        // Zero and oversized group sizes.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            take_spec_key(&mut Reader::new(&bad)),
            Err(KeyError::InvalidGroupSize.into())
        );
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&(MAX_GROUP_SIZE as u32 + 1).to_le_bytes());
        assert_eq!(
            take_spec_key(&mut Reader::new(&bad)),
            Err(KeyError::InvalidGroupSize.into())
        );
        // α out of range.
        let mut bad = good.clone();
        bad[4..12].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(
            take_spec_key(&mut Reader::new(&bad)),
            Err(SpecKeyError::Key(KeyError::InvalidAlpha(v))) if v == 2.0
        ));
        // Undefined property bit.
        let mut bad = good.clone();
        bad[12] = 0x80;
        assert_eq!(
            take_spec_key(&mut Reader::new(&bad)),
            Err(KeyError::InvalidProperties(0x80).into())
        );
        // Unknown objective tag and inconsistent d.
        let mut bad = good.clone();
        bad[13] = 9;
        assert!(matches!(
            take_spec_key(&mut Reader::new(&bad)),
            Err(SpecKeyError::Key(KeyError::InvalidObjective { tag: 9, .. }))
        ));
        let mut bad = good.clone();
        bad[14] = 1; // d = 1 on an L0 tag
        assert!(matches!(
            take_spec_key(&mut Reader::new(&bad)),
            Err(SpecKeyError::Key(KeyError::InvalidObjective { d: 1, .. }))
        ));
        // Truncated key.
        assert!(matches!(
            take_spec_key(&mut Reader::new(&good[..10])),
            Err(SpecKeyError::Decode(DecodeError::Truncated { .. }))
        ));
        // Encode-side refusals.
        let huge = SpecKey::new(
            MAX_GROUP_SIZE + 1,
            Alpha::new(0.9).unwrap(),
            PropertySet::empty(),
        );
        assert_eq!(
            put_spec_key(&huge, &mut Vec::new()),
            Err(KeyError::InvalidGroupSize)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any byte string either decodes to a key that re-encodes to those
        /// exact bytes, or fails cleanly — never a panic.
        #[test]
        fn arbitrary_key_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..24)) {
            let mut reader = Reader::new(&bytes);
            if let Ok(key) = take_spec_key(&mut reader) {
                let mut out = Vec::new();
                put_spec_key(&key, &mut out).unwrap();
                prop_assert_eq!(&out[..], &bytes[..SPEC_KEY_LEN]);
            }
        }
    }
}

//! Grouping utilities: partition a population of private bits into small groups and
//! compute each group's true count.
//!
//! The paper's experiments (Section V) always operate on groups of a fixed size `n`
//! (2 up to a few tens): the population is partitioned, each group's true count
//! `j ∈ {0..n}` is computed, and a mechanism is applied independently per group.

use serde::{Deserialize, Serialize};

/// A population of individuals, each holding one private bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Population {
    bits: Vec<bool>,
}

impl Population {
    /// Wrap a vector of private bits.
    pub fn new(bits: Vec<bool>) -> Self {
        Population { bits }
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The private bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Total number of ones (the full-population count).
    pub fn total_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Partition into consecutive groups of exactly `group_size` individuals and
    /// return each group's true count.  A trailing partial group (fewer than
    /// `group_size` members) is dropped, mirroring the paper's setup where every
    /// group has the same size so that all mechanisms share the same output range.
    pub fn group_counts(&self, group_size: usize) -> Vec<usize> {
        assert!(group_size >= 1, "group size must be at least 1");
        self.bits
            .chunks_exact(group_size)
            .map(|chunk| chunk.iter().filter(|&&b| b).count())
            .collect()
    }

    /// Histogram of group counts: `histogram[j]` = number of groups whose true count
    /// is `j`, for `j in 0..=group_size`.
    pub fn count_histogram(&self, group_size: usize) -> Vec<usize> {
        let mut histogram = vec![0usize; group_size + 1];
        for count in self.group_counts(group_size) {
            histogram[count] += 1;
        }
        histogram
    }

    /// The empirical distribution of group counts (histogram normalised to sum 1),
    /// usable directly as a prior over inputs for objective evaluation.
    pub fn count_distribution(&self, group_size: usize) -> Vec<f64> {
        let histogram = self.count_histogram(group_size);
        let total: usize = histogram.iter().sum();
        if total == 0 {
            return vec![0.0; group_size + 1];
        }
        histogram
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }
}

impl FromIterator<bool> for Population {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Population::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_counts_partition_consecutively_and_drop_the_tail() {
        let population = Population::new(vec![
            true, false, true, // group 0: 2
            false, false, false, // group 1: 0
            true, true, true, // group 2: 3
            true, false, // trailing partial group, dropped
        ]);
        assert_eq!(population.len(), 11);
        assert_eq!(population.total_count(), 6);
        assert_eq!(population.group_counts(3), vec![2, 0, 3]);
    }

    #[test]
    fn histogram_and_distribution() {
        let population = Population::new(vec![true, true, false, false, true, false, true, true]);
        // Groups of 2: counts [2, 0, 1, 2].
        assert_eq!(population.group_counts(2), vec![2, 0, 1, 2]);
        assert_eq!(population.count_histogram(2), vec![1, 1, 2]);
        let distribution = population.count_distribution(2);
        assert!((distribution[0] - 0.25).abs() < 1e-12);
        assert!((distribution[2] - 0.5).abs() < 1e-12);
        assert!((distribution.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population_edge_cases() {
        let population = Population::new(vec![]);
        assert!(population.is_empty());
        assert!(population.group_counts(4).is_empty());
        assert_eq!(population.count_distribution(2), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_panics() {
        Population::new(vec![true]).group_counts(0);
    }

    #[test]
    fn from_iterator() {
        let population: Population = (0..6).map(|i| i % 2 == 0).collect();
        assert_eq!(population.total_count(), 3);
        assert_eq!(population.bits().len(), 6);
    }
}

//! Synthetic Binomial populations (Section V-C).
//!
//! The paper's synthetic experiments generate a population of 10,000 individuals,
//! each holding a private bit that is 1 with probability `p`, and divide them into
//! groups of size `n`; the within-group count is then Binomial(n, p).  Varying `p`
//! controls how skewed the group counts are (p near 0 or 1 concentrates counts at the
//! extremes, where the Geometric Mechanism does well; p near 0.5 concentrates them in
//! the middle, where it does not).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::groups::Population;

/// Parameters of a synthetic Binomial population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinomialPopulationSpec {
    /// Number of individuals in the population (the paper uses 10,000).
    pub population_size: usize,
    /// Probability that an individual's private bit is 1.
    pub probability: f64,
}

impl BinomialPopulationSpec {
    /// The paper's default population size of 10,000 individuals with bit probability `p`.
    pub fn paper_default(probability: f64) -> Self {
        BinomialPopulationSpec {
            population_size: 10_000,
            probability,
        }
    }

    /// Generate a population using the provided random-number generator.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Population {
        assert!(
            (0.0..=1.0).contains(&self.probability),
            "bit probability must lie in [0, 1]"
        );
        (0..self.population_size)
            .map(|_| rng.gen_bool(self.probability))
            .collect()
    }
}

/// The grid of bit probabilities swept by the paper's synthetic experiments
/// (Figures 11–13): from strongly skewed to balanced.
pub fn paper_probability_grid() -> Vec<f64> {
    vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
}

/// Exact Binomial(n, p) probability mass function, used to compare empirical group
/// count distributions against their expectation and as a skewed prior in tests.
pub fn binomial_pmf(n: usize, p: f64, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    // Compute the binomial coefficient in log space for numerical robustness.
    let log_coefficient = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (log_coefficient + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// The full Binomial(n, p) distribution over `0..=n`, normalised to sum exactly 1.
pub fn binomial_distribution(n: usize, p: f64) -> Vec<f64> {
    let mut pmf: Vec<f64> = (0..=n).map(|k| binomial_pmf(n, p, k)).collect();
    let total: f64 = pmf.iter().sum();
    for value in pmf.iter_mut() {
        *value /= total;
    }
    pmf
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_population_matches_the_spec_size_and_rate() {
        let spec = BinomialPopulationSpec::paper_default(0.3);
        let mut rng = StdRng::seed_from_u64(42);
        let population = spec.generate(&mut rng);
        assert_eq!(population.len(), 10_000);
        let rate = population.total_count() as f64 / population.len() as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn group_counts_follow_the_binomial_distribution() {
        let spec = BinomialPopulationSpec {
            population_size: 40_000,
            probability: 0.4,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let population = spec.generate(&mut rng);
        let n = 8;
        let empirical = population.count_distribution(n);
        let expected = binomial_distribution(n, 0.4);
        for k in 0..=n {
            assert!(
                (empirical[k] - expected[k]).abs() < 0.02,
                "k={k}: {} vs {}",
                empirical[k],
                expected[k]
            );
        }
    }

    #[test]
    fn pmf_sums_to_one_and_handles_edges() {
        for n in [1usize, 5, 12] {
            for p in [0.0, 0.2, 0.5, 1.0] {
                let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n} p={p}");
            }
        }
        assert_eq!(binomial_pmf(4, 0.5, 7), 0.0);
        assert_eq!(binomial_pmf(4, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(4, 1.0, 4), 1.0);
        assert!((binomial_pmf(4, 0.5, 2) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn distribution_is_normalised() {
        let d = binomial_distribution(12, 0.3);
        assert_eq!(d.len(), 13);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_grid_is_within_bounds() {
        let grid = paper_probability_grid();
        assert!(grid.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(grid.contains(&0.5));
        assert!(grid.len() >= 9);
    }

    #[test]
    #[should_panic(expected = "bit probability")]
    fn invalid_probability_panics() {
        let spec = BinomialPopulationSpec {
            population_size: 10,
            probability: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(1);
        spec.generate(&mut rng);
    }
}

//! # cpm-data — workload generators for constrained private mechanisms
//!
//! Synthetic data used by the experiments of *"Constrained Private Mechanisms for
//! Count Data"* (ICDE 2018):
//!
//! * [`binomial`] — the Section V-C synthetic workload: a population of individuals
//!   whose private bits are i.i.d. Bernoulli(p), partitioned into groups of size `n`
//!   so that group counts are Binomial(n, p).
//! * [`adult`] — a synthetic census table standing in for the UCI Adult dataset of
//!   Section V-B (the raw file is not available offline); its three binary targets
//!   (income, gender, young) match the published Adult marginals and correlations.
//! * [`groups`] — partitioning a population into fixed-size groups and computing the
//!   per-group true counts that mechanisms then privatise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod binomial;
pub mod groups;

pub use adult::{AdultDataset, AdultDatasetSpec, AdultRecord, AdultTarget};
pub use binomial::{binomial_distribution, binomial_pmf, BinomialPopulationSpec};
pub use groups::Population;

/// Commonly used items, re-exported for `use cpm_data::prelude::*`.
pub mod prelude {
    pub use crate::adult::{AdultDataset, AdultDatasetSpec, AdultRecord, AdultTarget};
    pub use crate::binomial::{
        binomial_distribution, binomial_pmf, paper_probability_grid, BinomialPopulationSpec,
    };
    pub use crate::groups::Population;
}

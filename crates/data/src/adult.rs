//! A synthetic Adult-like census table (Section V-B substitution).
//!
//! The paper's real-data experiments use the UCI Adult dataset: ~32K rows of
//! demographic attributes, from which three binary *sensitive targets* are derived —
//! income level (>50K), gender (male), and "young" (age under 30).  The raw UCI file
//! is not available offline, so this module generates a synthetic census table whose
//! **target marginals and cross-correlations match the published Adult statistics**:
//!
//! * ≈ 24% of records have high income,
//! * ≈ 67% are male,
//! * ≈ 31% are younger than 30,
//! * high income is strongly positively associated with being male, being middle-aged
//!   (30–55), being married, and having more years of education.
//!
//! The Figure-10 experiment only consumes the per-group true counts of each binary
//! target, so matching the marginal / mixing structure of the targets preserves the
//! behaviour the paper demonstrates: group counts concentrate away from the extremes
//! 0 and `n`, which is exactly the regime where the Geometric Mechanism struggles.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::groups::Population;

/// Work class of a record (coarse version of the Adult `workclass` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkClass {
    /// Private-sector employee (the large majority class).
    Private,
    /// Self-employed.
    SelfEmployed,
    /// Any level of government employment.
    Government,
    /// Not currently working (unemployed, retired, ...).
    NotWorking,
}

/// Marital status of a record (coarse version of the Adult `marital-status` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaritalStatus {
    /// Married, spouse present.
    Married,
    /// Never married.
    NeverMarried,
    /// Divorced, separated, or widowed.
    PreviouslyMarried,
}

/// One synthetic census record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdultRecord {
    /// Age in years (17–89).
    pub age: u8,
    /// Whether the record is male.
    pub male: bool,
    /// Years of education completed (1–16).
    pub education_years: u8,
    /// Work class.
    pub work_class: WorkClass,
    /// Marital status.
    pub marital_status: MaritalStatus,
    /// Usual hours worked per week.
    pub hours_per_week: u8,
    /// Whether annual income exceeds 50K (the sensitive income target).
    pub high_income: bool,
}

/// The three binary sensitive targets of the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdultTarget {
    /// Income above 50K.
    HighIncome,
    /// Gender recorded as male.
    Male,
    /// Age strictly below 30 ("estimating young population").
    Young,
}

impl AdultTarget {
    /// All three targets, in the order of Figure 10's panels.
    pub const ALL: [AdultTarget; 3] = [
        AdultTarget::Young,
        AdultTarget::Male,
        AdultTarget::HighIncome,
    ];

    /// Human-readable label matching the figure captions.
    pub fn label(self) -> &'static str {
        match self {
            AdultTarget::HighIncome => "income level",
            AdultTarget::Male => "gender balance",
            AdultTarget::Young => "young population",
        }
    }

    /// Extract the target bit from a record.
    pub fn bit(self, record: &AdultRecord) -> bool {
        match self {
            AdultTarget::HighIncome => record.high_income,
            AdultTarget::Male => record.male,
            AdultTarget::Young => record.age < 30,
        }
    }
}

/// Parameters of the synthetic census table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdultDatasetSpec {
    /// Number of records (the UCI training split has 32,561).
    pub size: usize,
}

impl Default for AdultDatasetSpec {
    fn default() -> Self {
        AdultDatasetSpec { size: 32_561 }
    }
}

/// A generated synthetic census table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdultDataset {
    records: Vec<AdultRecord>,
}

impl AdultDataset {
    /// Generate a dataset of the given size with the provided RNG.
    pub fn generate<R: Rng + ?Sized>(spec: AdultDatasetSpec, rng: &mut R) -> Self {
        let records = (0..spec.size).map(|_| generate_record(rng)).collect();
        AdultDataset { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the records.
    pub fn records(&self) -> &[AdultRecord] {
        &self.records
    }

    /// Extract one binary target as a [`Population`] of private bits, in record
    /// order (the paper gathers rows "arbitrarily" into groups; record order is as
    /// arbitrary as any).
    pub fn target_population(&self, target: AdultTarget) -> Population {
        self.records.iter().map(|r| target.bit(r)).collect()
    }

    /// The marginal rate of a target (fraction of records where the bit is 1).
    pub fn target_rate(&self, target: AdultTarget) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| target.bit(r)).count() as f64 / self.records.len() as f64
    }
}

/// Sample one synthetic record.  The generative model is deliberately simple but
/// reproduces the Adult marginals and the income correlations described in the
/// module docs.
fn generate_record<R: Rng + ?Sized>(rng: &mut R) -> AdultRecord {
    // Age: skewed towards younger adults; P(age < 30) ≈ 0.31, mean ≈ 40.
    let u: f64 = rng.gen();
    let age = (17.0 + 73.0 * u.powf(1.6)).min(89.0) as u8;

    // Gender: ≈ 67% male, as in Adult.
    let male = rng.gen_bool(0.67);

    // Education years: categorical centred on 9–13 years.
    let education_years = sample_education(rng);

    // Marital status: older records are more likely to be (or have been) married.
    let marital_status = if age < 25 {
        if rng.gen_bool(0.85) {
            MaritalStatus::NeverMarried
        } else {
            MaritalStatus::Married
        }
    } else if rng.gen_bool(0.55) {
        MaritalStatus::Married
    } else if rng.gen_bool(0.6) {
        MaritalStatus::NeverMarried
    } else {
        MaritalStatus::PreviouslyMarried
    };

    // Work class: mostly private sector.
    let work_class = match rng.gen_range(0..100) {
        0..=69 => WorkClass::Private,
        70..=80 => WorkClass::SelfEmployed,
        81..=93 => WorkClass::Government,
        _ => WorkClass::NotWorking,
    };

    // Hours per week: centred on 40.
    let hours_per_week = (20.0 + 50.0 * rng.gen::<f64>() * rng.gen::<f64>() + 10.0).min(99.0) as u8;

    // Income: logistic-style score combining the attributes, calibrated so the
    // overall high-income rate is ≈ 0.24 with the Adult-like conditional structure
    // (male ≈ 0.30 vs female ≈ 0.11; under-30 ≈ 0.10; married and educated higher).
    let mut score: f64 = -2.95;
    if male {
        score += 0.85;
    }
    if (30..=55).contains(&age) {
        score += 1.05;
    } else if age > 55 {
        score += 0.55;
    }
    score += 0.16 * (education_years as f64 - 10.0);
    if marital_status == MaritalStatus::Married {
        score += 0.95;
    }
    if work_class == WorkClass::SelfEmployed {
        score += 0.25;
    }
    if work_class == WorkClass::NotWorking {
        score -= 1.5;
    }
    score += 0.015 * (hours_per_week as f64 - 40.0);
    let probability = 1.0 / (1.0 + (-score).exp());
    let high_income = rng.gen_bool(probability.clamp(0.0, 1.0));

    AdultRecord {
        age,
        male,
        education_years,
        work_class,
        marital_status,
        hours_per_week,
        high_income,
    }
}

fn sample_education<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    // Roughly: a small tail below 9 years, a big mass at 9–10 (high school), a
    // sizeable mass at 13 (some college), and bachelor's/advanced degrees above.
    match rng.gen_range(0..100) {
        0..=11 => rng.gen_range(1..=8),
        12..=55 => rng.gen_range(9..=10),
        56..=77 => rng.gen_range(11..=13),
        78..=93 => 14,
        _ => rng.gen_range(15..=16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> AdultDataset {
        let mut rng = StdRng::seed_from_u64(2018);
        AdultDataset::generate(AdultDatasetSpec::default(), &mut rng)
    }

    #[test]
    fn default_spec_matches_the_uci_training_split_size() {
        assert_eq!(AdultDatasetSpec::default().size, 32_561);
        assert_eq!(dataset().len(), 32_561);
        assert!(!dataset().is_empty());
    }

    #[test]
    fn target_marginals_match_published_adult_statistics() {
        let data = dataset();
        let income = data.target_rate(AdultTarget::HighIncome);
        let male = data.target_rate(AdultTarget::Male);
        let young = data.target_rate(AdultTarget::Young);
        assert!((income - 0.24).abs() < 0.05, "income rate {income}");
        assert!((male - 0.67).abs() < 0.02, "male rate {male}");
        assert!((young - 0.31).abs() < 0.05, "young rate {young}");
    }

    #[test]
    fn income_correlations_have_the_right_sign() {
        let data = dataset();
        let rate = |pred: &dyn Fn(&AdultRecord) -> bool| {
            let selected: Vec<_> = data.records().iter().filter(|r| pred(r)).collect();
            selected.iter().filter(|r| r.high_income).count() as f64 / selected.len() as f64
        };
        let male_rate = rate(&|r| r.male);
        let female_rate = rate(&|r| !r.male);
        assert!(
            male_rate > female_rate + 0.1,
            "{male_rate} vs {female_rate}"
        );
        let young_rate = rate(&|r| r.age < 30);
        let middle_rate = rate(&|r| (30..=55).contains(&r.age));
        assert!(
            middle_rate > young_rate + 0.1,
            "{middle_rate} vs {young_rate}"
        );
        let married_rate = rate(&|r| r.marital_status == MaritalStatus::Married);
        let never_rate = rate(&|r| r.marital_status == MaritalStatus::NeverMarried);
        assert!(married_rate > never_rate, "{married_rate} vs {never_rate}");
    }

    #[test]
    fn record_fields_are_within_their_domains() {
        let data = dataset();
        for record in data.records().iter().take(5000) {
            assert!((17..=89).contains(&record.age));
            assert!((1..=16).contains(&record.education_years));
            assert!(record.hours_per_week <= 99);
        }
    }

    #[test]
    fn group_counts_concentrate_away_from_the_extremes() {
        // The property the paper's Figure 10 relies on: for moderate group sizes the
        // per-group counts of these targets are rarely 0 or n, so GM's preference for
        // extreme outputs hurts it.
        let data = dataset();
        let n = 8;
        for target in [AdultTarget::Male, AdultTarget::Young] {
            let counts = data.target_population(target).group_counts(n);
            let extreme =
                counts.iter().filter(|&&c| c == 0 || c == n).count() as f64 / counts.len() as f64;
            assert!(
                extreme < 0.30,
                "{}: {extreme} of groups are at the extremes",
                target.label()
            );
        }
    }

    #[test]
    fn target_population_round_trips_rates() {
        let data = dataset();
        for target in AdultTarget::ALL {
            let population = data.target_population(target);
            assert_eq!(population.len(), data.len());
            let rate = population.total_count() as f64 / population.len() as f64;
            assert!((rate - data.target_rate(target)).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdultTarget::HighIncome.label(), "income level");
        assert_eq!(AdultTarget::Male.label(), "gender balance");
        assert_eq!(AdultTarget::Young.label(), "young population");
    }
}

//! Safe wrapper over `poll(2)`.
//!
//! The reactor hands this module a slice of [`PollFd`]s — one per connection,
//! plus the listener and a wake pipe — and blocks until at least one is ready
//! (or the timeout lapses).  The wrapper owns the two things that make the raw
//! syscall unsafe: the pointer/length pair is derived from a real slice, and
//! `EINTR` is retried so callers never observe a spurious error from a signal.

use std::io;
use std::os::fd::RawFd;

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition is pending (revents only).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness result, exactly as `poll(2)`
/// lays it out.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watch `fd` for the events in `events` (a bitmask of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// The readiness bits the last [`poll`] call reported (error conditions
    /// `POLLERR`/`POLLHUP`/`POLLNVAL` may be set even when not requested).
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the descriptor is readable (or in an error/hangup state, which
    /// a read will surface as `Ok(0)` or an error — both handled by the read
    /// path, so they are folded in here).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Whether the descriptor is writable.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLNVAL) != 0
    }
}

// The symbol std's platform support already links from the C library; the
// signature matches POSIX (`nfds_t` is `c_ulong` on every Linux/glibc/musl
// target this workspace builds for, and on the BSDs/macOS `c_uint` promotes
// losslessly for the fd counts a single process can reach).
extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> i32;
}

/// Block until a descriptor in `fds` is ready, the timeout lapses, or the
/// process is interrupted (retried internally).
///
/// `timeout_ms < 0` blocks indefinitely; `0` polls without blocking.  Returns
/// the number of descriptors with non-zero `revents` (0 on timeout).
pub fn poll_ready(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively-borrowed slice of `#[repr(C)]`
        // structs laid out exactly as `struct pollfd`; the kernel writes only
        // the `revents` field of the `fds.len()` entries passed.
        let ready = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if ready >= 0 {
            return Ok(ready as usize);
        }
        let error = io::Error::last_os_error();
        if error.kind() == io::ErrorKind::Interrupted {
            continue; // EINTR: a signal landed mid-wait; re-enter the wait.
        }
        return Err(error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_a_write_and_timeout_when_idle() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports no readiness.
        assert_eq!(poll_ready(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].readable());

        a.write_all(b"x").unwrap();
        let ready = poll_ready(&mut fds, 1_000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn writability_is_reported_for_an_open_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_ready(&mut fds, 1_000).unwrap(), 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_is_folded_into_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_ready(&mut fds, 1_000).unwrap(), 1);
        assert!(fds[0].readable(), "peer hangup must wake the read path");
    }
}

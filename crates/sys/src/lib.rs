//! # cpm-sys — the workspace's only `unsafe` OS surface
//!
//! Everything above this crate is `#![forbid(unsafe_code)]`; the readiness
//! syscall the serving reactor needs (`poll(2)`) is not reachable from safe
//! std, so it lives here behind a safe, bounds-checked wrapper.  The crate
//! declares the symbol directly against the C library std already links — no
//! external `libc` crate is required (the build container has no registry
//! access).
//!
//! Scope is deliberately tiny: one syscall, one `#[repr(C)]` struct, event
//! bitmask constants.  Anything else the serving tier needs from the OS goes
//! through std.

#![warn(missing_docs)]

#[cfg(unix)]
pub mod poll;

#[cfg(unix)]
pub use poll::{poll_ready, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no registry access, so this vendored crate provides the
//! subset of serde this workspace relies on: `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(transparent)]` and `#[serde(default)]`) and enough trait
//! machinery for `serde_json` round-trips.  Instead of serde's visitor
//! architecture, both traits go through a single self-describing [`Value`] tree —
//! dramatically simpler, and exactly as capable for the JSON-only use here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing data tree (the mini-serde data model; JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (kept as `f64`, which is exact for the integers used here).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key–value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

/// Error produced by mini-serde conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A required field was absent while deserialising `owner`.
    pub fn missing_field(owner: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` while reading `{owner}`"))
    }

    /// An enum tag did not match any variant of `owner`.
    pub fn unknown_variant(owner: &str, tag: &str) -> Self {
        Error::custom(format!("unknown variant `{tag}` for `{owner}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the mini-serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the mini-serde data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// View a value as an object, with a typed error naming the expecting type.
pub fn as_object<'v>(value: &'v Value, owner: &str) -> Result<&'v [(String, Value)], Error> {
    match value {
        Value::Object(pairs) => Ok(pairs),
        other => Err(Error::custom(format!(
            "expected object for `{owner}`, found {}",
            kind_name(other)
        ))),
    }
}

/// View a value as an array, with a typed error naming the expecting type.
pub fn as_array<'v>(value: &'v Value, owner: &str) -> Result<&'v [Value], Error> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(Error::custom(format!(
            "expected array for `{owner}`, found {}",
            kind_name(other)
        ))),
    }
}

/// Look up a field in an object's pair list.
pub fn object_get<'v>(pairs: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Index into an array with a bounds-checked error.
pub fn array_get<'v>(items: &'v [Value], index: usize, owner: &str) -> Result<&'v Value, Error> {
    items.get(index).ok_or_else(|| {
        Error::custom(format!(
            "tuple for `{owner}` is too short (missing index {index})"
        ))
    })
}

fn kind_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and standard containers.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                kind_name(other)
            ))),
        }
    }
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        kind_name(other)
                    ))),
                }
            }
        }
    )*};
}
impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        as_array(value, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = as_array(value, "tuple")?;
                Ok(($($name::from_value(array_get(items, $idx, "tuple")?)?,)+))
            }
        }
    )+};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so the output is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(3usize.to_value(), Value::Number(3.0));
        assert_eq!(usize::from_value(&Value::Number(3.0)).unwrap(), 3);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let v = vec![1.5f64, 2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn tuples_round_trip() {
        let t = ("label".to_string(), 0.25f64);
        let back: (String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::Number(1.0)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}

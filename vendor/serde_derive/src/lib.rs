//! Derive macros for the vendored mini-`serde` (see `vendor/serde`).
//!
//! The build environment has no registry access, so `syn`/`quote` are unavailable;
//! this crate parses the derive input token stream by hand.  It supports exactly the
//! shapes this workspace uses:
//!
//! * structs with named fields (with optional `#[serde(default)]` or
//!   `#[serde(default = "path::to::fn")]` per field and `#[serde(transparent)]`
//!   on the container),
//! * tuple structs (single-field newtypes serialise transparently, like real serde),
//! * enums with unit, tuple, and struct variants (externally tagged, like real
//!   serde's default representation).
//!
//! Generics are intentionally unsupported — the workspace only derives on concrete
//! types — and the macro panics with a clear message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shape of the derive input.
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: Option<FieldDefault>,
}

/// How a missing field is filled during deserialisation.
enum FieldDefault {
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call the named function.  The generated
    /// impl lives in the same module as the struct, so a bare function name
    /// resolves exactly as it does for real serde.
    Path(String),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers.
// ---------------------------------------------------------------------------

/// Attribute scan result: which `serde(...)` markers were present.
#[derive(Default)]
struct SerdeMarks {
    transparent: bool,
    default: Option<FieldDefault>,
}

/// Consume leading `#[...]` attributes starting at `i`, recording serde markers.
fn skip_attributes(tokens: &[TokenTree], mut i: usize, marks: &mut SerdeMarks) -> usize {
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(name)) = inner.first() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let text = args.stream().to_string();
                    if text.contains("transparent") {
                        marks.transparent = true;
                    }
                    for part in text.split(',') {
                        let part = part.trim();
                        if part == "default" {
                            marks.default = Some(FieldDefault::Std);
                        } else if let Some(rest) = part.strip_prefix("default") {
                            // `default = "path::to::fn"` — the token-stream
                            // string keeps the quotes; strip `=` and them.
                            let rest = rest.trim_start();
                            if let Some(rest) = rest.strip_prefix('=') {
                                let path = rest.trim().trim_matches('"').trim();
                                if !path.is_empty() {
                                    marks.default = Some(FieldDefault::Path(path.to_string()));
                                }
                            }
                        }
                    }
                }
            }
        }
        i += 2;
    }
    i
}

/// Consume a visibility qualifier (`pub`, `pub(...)`) starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(word)) = tokens.get(i) {
        if word.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skip a type (or any token run) until a top-level `,`, tracking `<`/`>` depth.
/// Returns the index just past the terminating comma (or the end).
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named-field lists (struct bodies and struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut marks = SerdeMarks::default();
        i = skip_attributes(&tokens, i, &mut marks);
        i = skip_visibility(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("mini-serde derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        i = skip_past_comma(&tokens, i);
        fields.push(Field {
            name,
            default: marks.default,
        });
    }
    fields
}

/// Count the top-level comma-separated entries of a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_past_comma(&tokens, i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut marks = SerdeMarks::default();
        i = skip_attributes(&tokens, i, &mut marks);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let parsed = parse_named_fields(g.stream());
                i += 1;
                VariantFields::Named(parsed)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                i += 1;
                VariantFields::Tuple(count)
            }
            _ => VariantFields::Unit,
        };
        // Skip to the next variant (past discriminants and the separating comma).
        i = skip_past_comma(&tokens, i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut marks = SerdeMarks::default();
    let mut i = skip_attributes(&tokens, 0, &mut marks);
    i = skip_visibility(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => panic!("mini-serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => panic!("mini-serde derive: expected a type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("mini-serde derive does not support generic type `{name}`");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("mini-serde derive: expected enum body, found {other:?}"),
        },
        other => panic!("mini-serde derive: cannot derive for `{other}` items"),
    };

    Input {
        name,
        transparent: marks.transparent,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn render(code: String) -> TokenStream {
    code.parse()
        .expect("mini-serde derive generated invalid Rust")
}

/// Derive `serde::Serialize` (mini-serde: `fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                let field = &fields[0].name;
                format!("serde::Serialize::to_value(&self.{field})")
            } else {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{0}\"), serde::Serialize::to_value(&self.{0}))",
                            f.name
                        )
                    })
                    .collect();
                format!("serde::Value::Object(::std::vec![{}])", pairs.join(", "))
            }
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|idx| format!("serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => serde::Value::String(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Tuple(count) => {
                            let binders: Vec<String> =
                                (0..*count).map(|idx| format!("f{idx}")).collect();
                            let inner = if *count == 1 {
                                "serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds = binders.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Value::Object(::std::vec![{pairs}]))]),",
                                binds = binders.join(", "),
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    render(format!(
        "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}"
    ))
}

fn named_field_initialisers(fields: &[Field], owner: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            let missing = match &f.default {
                Some(FieldDefault::Std) => "::std::default::Default::default()".to_string(),
                Some(FieldDefault::Path(path)) => format!("{path}()"),
                None => format!(
                    "return ::std::result::Result::Err(serde::Error::missing_field(\"{owner}\", \"{fname}\"))"
                ),
            };
            format!(
                "{fname}: match serde::object_get(fields, \"{fname}\") {{ ::std::option::Option::Some(v) => serde::Deserialize::from_value(v)?, ::std::option::Option::None => {missing} }},"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Derive `serde::Deserialize` (mini-serde: `fn from_value(&Value) -> Result<Self>`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) if input.transparent => {
            let field = &fields[0].name;
            format!(
                "::std::result::Result::Ok({name} {{ {field}: serde::Deserialize::from_value(value)? }})"
            )
        }
        Kind::NamedStruct(fields) => {
            let inits = named_field_initialisers(fields, name);
            format!(
                "let fields = serde::as_object(value, \"{name}\")?; ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Kind::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|idx| format!("serde::Deserialize::from_value(serde::array_get(items, {idx}, \"{name}\")?)?"))
                .collect();
            format!(
                "let items = serde::as_array(value, \"{name}\")?; ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantFields::Tuple(count) => {
                            let items: Vec<String> = (0..*count)
                                .map(|idx| format!("serde::Deserialize::from_value(serde::array_get(items, {idx}, \"{name}\")?)?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let items = serde::as_array(inner, \"{name}\")?; ::std::result::Result::Ok({name}::{vname}({})) }},",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits = named_field_initialisers(fields, name);
                            Some(format!(
                                "\"{vname}\" => {{ let fields = serde::as_object(inner, \"{name}\")?; ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{ \
                   serde::Value::String(tag) => match tag.as_str() {{ {unit} _ => ::std::result::Result::Err(serde::Error::unknown_variant(\"{name}\", tag)) }}, \
                   serde::Value::Object(pairs) if pairs.len() == 1 => {{ \
                       let (tag, inner) = &pairs[0]; \
                       match tag.as_str() {{ {tagged} _ => ::std::result::Result::Err(serde::Error::unknown_variant(\"{name}\", tag)) }} \
                   }}, \
                   _ => ::std::result::Result::Err(serde::Error::custom(\"expected an externally tagged `{name}` variant\")) \
                 }}",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            )
        }
    };
    render(format!(
        "impl serde::Deserialize for {name} {{ fn from_value(value: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{ {body} }} }}"
    ))
}

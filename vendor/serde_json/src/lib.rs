//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders and parses the vendored mini-serde [`Value`] tree as JSON.  Numbers are
//! printed with Rust's shortest round-trippable `f64` formatting, so
//! serialise → parse round-trips are bit-exact for every finite value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialise a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into any mini-serde [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

fn render(
    value: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::custom("cannot serialise a non-finite number"));
            }
            out.push_str(&format_number(*n));
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        // Rust's f64 Display is the shortest string that parses back exactly.
        format!("{n}")
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Object(vec![
            ("n".to_string(), Value::Number(3.0)),
            (
                "entries".to_string(),
                Value::Array(vec![Value::Number(0.25), Value::Number(1.0 / 3.0)]),
            ),
            ("label".to_string(), Value::String("a \"b\"\n".to_string())),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
        let pretty = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parses_scientific_notation_and_negatives() {
        let v: Value = from_str("[-1.5e-3, 2E2, -7]").unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Number(-0.0015),
                Value::Number(200.0),
                Value::Number(-7.0)
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the subset this workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, range and tuple [`Strategy`]s,
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its exact inputs instead.
//! * **Deterministic seeding** — each test's case stream is seeded from a hash of
//!   the test name, so failures reproduce across runs without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies (SplitMix64: tiny and statistically fine
/// for test-input generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator deterministically.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Deterministic per-test seed derived from the test's name (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw below `bound` (must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest size generated.
        pub min: usize,
        /// Largest size generated (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The public names `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Assert a condition inside a [`proptest!`] body; failures report the generated
/// inputs instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!($($arg)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(::std::stringify!($name));
                for case_index in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs: {:?}",
                            ::std::stringify!($name),
                            case_index + 1,
                            config.cases,
                            message,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let k = (1usize..12).generate(&mut rng);
            assert!((1..12).contains(&k));
            let b = (0u8..128).generate(&mut rng);
            assert!(b < 128);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seed_from_u64(2);
        let strategy = crate::collection::vec(0.0f64..1.0, 1..12);
        for _ in 0..500 {
            let v = strategy.generate(&mut rng);
            assert!((1..12).contains(&v.len()));
        }
        let exact = crate::collection::vec(0usize..5, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0.0f64..1.0, k in 1usize..10) {
            prop_assert!(x < 1.0);
            prop_assert!(k >= 1, "k was {}", k);
            prop_assert_eq!(k, k);
        }
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness.
//!
//! Implements the API subset this workspace's benches use — benchmark groups,
//! [`BenchmarkId`], `bench_with_input` / `bench_function`, `Bencher::iter`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros — backed by
//! a simple wall-clock sampler: after an automatic warm-up that also sizes the
//! per-sample batch, each benchmark collects `sample_size` samples and prints the
//! min / median / mean time per iteration.  No statistics beyond that, no HTML
//! reports, no comparison to previous runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level harness handle (one per bench binary).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and input parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identify a benchmark by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmark a closure that receives an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        self.report(&id.into().label, &bencher);
        self
    }

    /// Finish the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        let mut samples = bencher.samples.clone();
        if samples.is_empty() {
            println!("  {}/{label:<40} (no measurements)", self.name);
            return;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "  {}/{label:<40} min {:>12} | median {:>12} | mean {:>12} ({} samples)",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len(),
        );
    }
}

/// Accepted argument types for [`BenchmarkGroup::bench_function`].
pub struct BenchId {
    label: String,
}

impl From<&str> for BenchId {
    fn from(label: &str) -> Self {
        BenchId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchId {
    fn from(label: String) -> Self {
        BenchId { label }
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId { label: id.label }
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure a routine: warm up, choose a batch size targeting ~10ms per sample,
    /// then record per-iteration times.  The harness configuration comes from the
    /// surrounding group ([`BenchmarkGroup::sample_size`]); the overall budget is
    /// capped so very slow routines still finish (one sample minimum).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: run once to estimate the cost.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let target_sample = Duration::from_millis(10);
        let batch = if first >= target_sample {
            1
        } else {
            (target_sample.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u32
        };

        // Budget: aim for 20 samples but never spend more than ~3 s or fewer than 1.
        let budget = Duration::from_secs(3);
        let per_sample = first * batch;
        let max_samples = (budget.as_nanos() / per_sample.as_nanos().max(1)).clamp(1, 20) as usize;

        self.samples.clear();
        for _ in 0..max_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions into a callable that the bench `main` runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut bencher = Bencher::default();
        bencher.iter(|| black_box(21u64) * 2);
        assert!(!bencher.samples.is_empty());
    }

    #[test]
    fn groups_run_their_routines() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            ran = true;
            b.iter(|| n * n)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(ran);
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates registry, so
//! this vendored crate implements exactly the `rand 0.8` API subset the workspace
//! uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], and
//! the `gen` / `gen_bool` / `gen_range` methods.  The generator is **xoshiro256++**
//! seeded through SplitMix64 — statistically strong enough for the workspace's
//! distribution-matching tests (which compare empirical frequencies of 200k draws
//! against exact probabilities at tolerance 0.01), though of course not
//! cryptographically secure, exactly like the real `StdRng` contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full range for integers, fair coin for `bool`).
pub trait StandardSample {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.  Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform value below `span` (rejection-free; the modulo bias is below
/// 2⁻⁵³ for the small spans this workspace uses).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire) mapping: unbiased enough for non-cryptographic use.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// The user-facing random-value interface (the `rand 0.8` method names).
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: **xoshiro256++** (Blackman & Vigna),
    /// seeded via SplitMix64.  Deterministic for a given seed, 2²⁵⁶−1 period.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// A fresh generator seeded from the system clock (good enough for the
/// non-reproducible call sites; reproducible code paths use [`SeedableRng`]).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [0usize; 5];
        for _ in 0..10_000 {
            seen[rng.gen_range(0usize..5)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 1500));
        for _ in 0..1000 {
            let v = rng.gen_range(1i64..=8);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 1.0);
    }
}

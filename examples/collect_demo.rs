//! Collect demo: the full local-differential-privacy loop in one process.
//!
//! A Zipf-shaped population of 200k users, each holding a group count in
//! `0..=32`, is privatized through the `cpm-serve` engine with loopback
//! collection on; the collected reports are then inverted through the
//! designed mechanism matrix (`cpm-collect`) into unbiased frequency
//! estimates with 95% confidence intervals, printed against the truth and
//! checked against the paper's closed-form error expectation.
//!
//! ```sh
//! cargo run --release --example collect_demo
//! ```

use cpm_collect::prelude::*;
use cpm_core::{Alpha, PropertySet, SpecKey};
use cpm_serve::prelude::*;

fn main() {
    let n = 32;
    let alpha = Alpha::new(0.9).unwrap();
    let key = SpecKey::new(n, alpha, PropertySet::empty());
    let population: u64 = 200_000;

    // Zipf(1.0)-shaped truth: most users hold small counts.
    let weights: Vec<f64> = (0..=n).map(|k| 1.0 / (k + 1) as f64).collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut truth: Vec<u64> = weights
        .iter()
        .map(|w| (w / weight_sum * population as f64).floor() as u64)
        .collect();
    let assigned: u64 = truth.iter().sum();
    truth[0] += population - assigned;

    // Serve side: privatize every user's count, feeding the engine's own
    // collector (the wire path would carry the same outputs as b"CPMR"
    // report frames or {"op":"report"} — see cpm_serve::frontend).
    let engine = Engine::with_defaults();
    engine.set_collecting(true);
    let requests: Vec<Request> = truth
        .iter()
        .enumerate()
        .flat_map(|(input, &count)| (0..count).map(move |_| Request::new(key, input)))
        .collect();
    println!(
        "privatizing {population} users at (n={n}, alpha={}) ...",
        alpha.value()
    );
    for chunk in requests.chunks(50_000) {
        engine.privatize_batch(chunk).expect("privatize chunk");
    }

    // Collect side: invert the designed matrix over the output histogram.
    let observed = engine
        .collector()
        .observed(&key)
        .expect("reports collected");
    let design = engine.design(&key).expect("GM design");
    let freq = estimate_from_design(&design, &observed).expect("GM is invertible");

    println!("\n value     truth   estimate   95% CI half-width      error");
    for (k, &true_count) in truth.iter().enumerate() {
        let ci = freq.confidence_interval(k, 0.95);
        println!(
            " {k:>5} {:>9} {:>10.1} {:>19.1} {:>10.1}",
            true_count,
            freq.estimates[k],
            ci.half_width,
            freq.estimates[k] - true_count as f64,
        );
    }

    let truth_f: Vec<f64> = truth.iter().map(|&c| c as f64).collect();
    let empirical = freq.rmse_against(&truth_f);
    let expected = expected_rmse(design.mechanism(), &truth_f).expect("closed-form bound");
    println!(
        "\n empirical RMSE {empirical:.1} vs closed-form expectation {expected:.1} \
         ({:.2}x)",
        empirical / expected
    );
}

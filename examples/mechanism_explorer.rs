//! Mechanism explorer: walk the paper's Figure-5 flowchart.
//!
//! Given a set of required structural properties, a group size, and a privacy level,
//! the flowchart picks one of at most four distinct mechanisms (GM, EM, or one of two
//! LP solutions).  This example walks several requests, shows which mechanism is
//! chosen, audits the result against all seven properties and the DP constraint, and
//! runs the Gupte–Sundararajan test showing the constrained mechanisms are *not*
//! post-processings of GM.
//!
//! Run with `cargo run --release --example mechanism_explorer`.

use constrained_private_mechanisms::prelude::*;

fn main() -> Result<(), CoreError> {
    let alpha = Alpha::new(0.9)?;
    let n = 6;

    let requests: Vec<(&str, PropertySet)> = vec![
        ("no structural requirements", PropertySet::empty()),
        (
            "row monotonicity + symmetry",
            PropertySet::empty()
                .with(Property::RowMonotonicity)
                .with(Property::Symmetry),
        ),
        (
            "weak honesty",
            PropertySet::empty().with(Property::WeakHonesty),
        ),
        (
            "column monotonicity",
            PropertySet::empty().with(Property::ColumnMonotonicity),
        ),
        ("fairness", PropertySet::empty().with(Property::Fairness)),
        ("everything", PropertySet::all()),
    ];

    for (description, requested) in requests {
        let designed = MechanismSpec::new(n, alpha)
            .properties(requested)
            .build()?
            .design()?;
        let choice = designed.choice().expect("L0 designs carry a choice");
        let satisfied: Vec<&str> = Property::ALL
            .iter()
            .filter(|p| designed.report().holds(**p))
            .map(|p| p.short_name())
            .collect();
        let derivable = is_derivable_from_geometric(designed.mechanism(), alpha, 1e-9);
        println!("request: {description} ({requested})");
        println!("  flowchart choice : {}", choice.short_name());
        println!("  L0 score         : {:.4}", designed.score());
        println!(
            "  designed via     : {}",
            if designed.used_lp() {
                "LP solve"
            } else {
                "closed form"
            }
        );
        println!("  satisfies        : {satisfied:?}");
        println!(
            "  alpha-DP         : {}",
            designed.mechanism().satisfies_dp(alpha, 1e-6)
        );
        println!("  derivable from GM: {derivable}");
        println!();
        assert!(designed.requested_satisfied());
    }

    println!(
        "All requests satisfied. Note how only a handful of distinct mechanisms appear,\n\
         and how little L0 is lost relative to GM's optimum of {:.4}.",
        closed_form::gm_l0(alpha)
    );
    Ok(())
}

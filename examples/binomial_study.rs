//! Binomial study: how the input distribution decides which mechanism to deploy.
//!
//! The paper's synthetic experiments (Section V-C) show that the Geometric Mechanism
//! is competitive only when group counts are concentrated at the extremes (very
//! skewed populations), while the constrained mechanisms win when counts sit in the
//! middle.  This example sweeps the population skew `p`, measures the empirical
//! `L0,1` error of each mechanism, and prints a small decision table.
//!
//! Run with `cargo run --release --example binomial_study`.

use constrained_private_mechanisms::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), CoreError> {
    let alpha = Alpha::new(0.91)?;
    let group_size = 8;
    let repetitions = 10;

    println!(
        "Binomial populations of 5,000 individuals, groups of {group_size}, alpha = {} \
         ({} repetitions per cell)\n",
        alpha, repetitions
    );
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}   best",
        "p", "GM", "WM", "EM", "UM"
    );

    for &p in &[0.02, 0.1, 0.25, 0.5, 0.75, 0.9, 0.98] {
        let mut rng = StdRng::seed_from_u64((p * 1000.0) as u64);
        let population = BinomialPopulationSpec {
            population_size: 5_000,
            probability: p,
        }
        .generate(&mut rng);
        let counts = population.group_counts(group_size);

        let mut row = Vec::new();
        for which in NamedMechanism::PAPER_SET {
            let matrix = build_mechanism(which, group_size, alpha)?;
            let stats = evaluate_repeated(&matrix, &counts, repetitions, 99, |t, r| {
                empirical_error_rate_beyond(t, r, 1)
            });
            row.push((which.label(), stats.mean));
        }
        let best = row
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(label, _)| *label)
            .unwrap_or("-");
        println!(
            "{:<6} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   {best}",
            p, row[0].1, row[1].1, row[2].1, row[3].1
        );
    }

    println!(
        "\nSkewed populations (p near 0 or 1) favour GM; balanced populations favour the\n\
         constrained EM/WM — matching the paper's Figure 11."
    );
    Ok(())
}

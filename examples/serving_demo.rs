//! Serving demo: spin up the `cpm-serve` engine, warm two keys, stream a
//! Zipf-distributed request mix, and print cache and latency statistics.
//!
//! ```sh
//! cargo run --release --example serving_demo
//! ```

use cpm_core::{Alpha, Property, PropertySet};
use cpm_serve::prelude::*;
use cpm_serve::workload;

fn main() {
    let engine = Engine::with_defaults();
    let alpha = Alpha::new(0.9).unwrap();

    // Two keys a deployment would declare up front: a hot unconstrained GM and
    // the paper's WM (weak honesty + column monotonicity, LP-designed).
    let gm_key = SpecKey::new(64, alpha, PropertySet::empty());
    let wm_key = SpecKey::new(
        16,
        alpha,
        PropertySet::empty()
            .with(Property::WeakHonesty)
            .with(Property::ColumnMonotonicity),
    );
    println!("warming 2 keys: {gm_key} and {wm_key} ...");
    engine
        .warm(&[gm_key, wm_key])
        .expect("warm-up must succeed");
    for key in [&gm_key, &wm_key] {
        let design = engine.design(key).expect("already warmed");
        println!(
            "  {key}: {} designed in {:?}{}",
            design
                .choice()
                .map(|c| c.short_name())
                .unwrap_or("LP mechanism"),
            design.design_time(),
            design
                .solver_stats()
                .map(|s| format!(
                    " ({} + {} simplex pivots)",
                    s.phase1_iterations, s.phase2_iterations
                ))
                .unwrap_or_else(|| " (closed form)".to_string()),
        );
    }

    // A Zipf(1.1) mix over the two keys: the GM key dominates, the WM key rides
    // along — both resident, so every batch is pure sampling.
    let requests = workload::zipf_requests(&[gm_key, wm_key], 1.1, 2_000_000, 7);
    println!("\nstreaming {} requests in 10 batches ...", requests.len());
    let mut total_draws = 0usize;
    let mut total_sample = std::time::Duration::ZERO;
    for (index, batch) in requests.chunks(200_000).enumerate() {
        let outcome = engine.privatize_batch(batch).expect("batch must succeed");
        total_draws += outcome.outputs.len();
        total_sample += outcome.stats.sample_time;
        println!(
            "  batch {index:2}: {} draws, {} unique keys, {} hit(s), design {:?}, sample {:?} ({:.1}M draws/sec)",
            outcome.stats.requests,
            outcome.stats.unique_keys,
            outcome.stats.cache_hits,
            outcome.stats.design_time,
            outcome.stats.sample_time,
            outcome.stats.draws_per_sec() / 1e6,
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\ntotals: {total_draws} draws in {total_sample:?} ({:.1}M draws/sec sampling)",
        total_draws as f64 / total_sample.as_secs_f64() / 1e6,
    );
    println!(
        "cache: {} hits, {} misses, {} designs ({} LP), {:.1} ms designing, {} resident",
        stats.hits,
        stats.misses,
        stats.design_solves,
        stats.lp_solves,
        stats.design_nanos as f64 / 1e6,
        stats.entries,
    );
}

//! Quickstart: privately release the count of a small group.
//!
//! A clinic wants to publish how many of a group of 8 patients tested positive for a
//! sensitive condition, with α-differential privacy.  We build the Geometric
//! Mechanism and the Explicit Fair Mechanism, inspect their guarantees, and release a
//! noisy count.
//!
//! Run with `cargo run --example quickstart`.

use constrained_private_mechanisms::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), CoreError> {
    // Privacy level: alpha = exp(-epsilon) = 0.9 is a strong guarantee.
    let alpha = Alpha::new(0.9)?;
    let group_size = 8;
    let true_count = 5; // five of the eight patients are positive

    // The classic choice: the truncated Geometric Mechanism (optimal for L0).
    let gm = GeometricMechanism::new(group_size, alpha)?;
    // The paper's constrained alternative: the Explicit Fair Mechanism.
    let em = ExplicitFairMechanism::new(group_size, alpha)?;

    println!("Geometric Mechanism (GM), L0 score {:.4}", gm.l0_score());
    println!(
        "Explicit Fair Mechanism (EM), L0 score {:.4}",
        em.l0_score()
    );
    println!();

    // Both satisfy alpha-DP, but only EM satisfies all seven structural properties.
    assert!(gm.matrix().satisfies_dp(alpha, 1e-9));
    assert!(em.matrix().satisfies_dp(alpha, 1e-9));
    let gm_violations = PropertySet::all().violations(gm.matrix(), 1e-9);
    println!(
        "GM violates {} of the 7 structural properties: {:?}",
        gm_violations.len(),
        gm_violations
    );
    println!(
        "EM violates none: {:?}",
        PropertySet::all().violations(em.matrix(), 1e-9)
    );
    println!();

    // Release a private count with each mechanism.
    let mut rng = StdRng::seed_from_u64(42);
    let gm_sampler = MechanismSampler::new(gm.matrix());
    let em_sampler = MechanismSampler::new(em.matrix());
    println!("true count: {true_count}");
    println!("GM release: {}", gm_sampler.sample(true_count, &mut rng));
    println!("EM release: {}", em_sampler.sample(true_count, &mut rng));

    // How likely is each mechanism to tell the truth for this input?
    println!();
    println!(
        "Pr[truth | input {true_count}]  GM = {:.3},  EM = {:.3}",
        gm.matrix().prob(true_count, true_count),
        em.matrix().prob(true_count, true_count)
    );
    Ok(())
}

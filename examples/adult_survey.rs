//! Adult survey: privately estimating small-group statistics from census microdata.
//!
//! This mirrors the paper's Section V-B motivation: an analyst wants per-group counts
//! (how many of each group of 10 people are high earners / male / young) without
//! exposing any individual's attribute.  We generate the synthetic Adult-like table,
//! privatise every group's count with GM, WM, EM, and UM, and compare both the
//! per-group error rate and the aggregate (city-wide) estimate each mechanism yields.
//!
//! Run with `cargo run --release --example adult_survey`.

use constrained_private_mechanisms::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), CoreError> {
    let alpha = Alpha::new(0.9)?;
    let group_size = 10;
    let mut rng = StdRng::seed_from_u64(7);

    // 16k synthetic census records (a quarter of the full Adult size, for speed).
    let dataset = AdultDataset::generate(AdultDatasetSpec { size: 16_000 }, &mut rng);
    println!("generated {} census records", dataset.len());

    for target in AdultTarget::ALL {
        let population = dataset.target_population(target);
        let counts = population.group_counts(group_size);
        let true_total: usize = counts.iter().sum();
        println!(
            "\n== {} (marginal rate {:.3}, {} groups of {group_size}) ==",
            target.label(),
            dataset.target_rate(target),
            counts.len()
        );

        for which in NamedMechanism::PAPER_SET {
            let matrix = build_mechanism(which, group_size, alpha)?;
            let sampler = MechanismSampler::new(&matrix);
            let reported = sampler.privatize(&counts, &mut rng);
            let noisy_total: usize = reported.iter().sum();
            println!(
                "  {:<3} wrong-count rate {:.3}   RMSE {:.3}   total estimate {} (true {})",
                which.label(),
                empirical_error_rate(&counts, &reported),
                root_mean_square_error(&counts, &reported),
                noisy_total,
                true_total
            );
        }
    }

    println!(
        "\nOn this middle-heavy data the constrained mechanisms (EM, WM) report the exact\n\
         group count more often than GM, which wastes probability mass on the extreme\n\
         outputs 0 and {group_size} — the paper's Figure 10 finding."
    );
    Ok(())
}

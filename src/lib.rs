//! # Constrained Private Mechanisms for Count Data
//!
//! Umbrella crate re-exporting the workspace members that implement the ICDE 2018
//! paper *"Constrained Private Mechanisms for Count Data"* (Cormode, Kulkarni,
//! Srivastava).
//!
//! The interesting code lives in the member crates:
//!
//! * [`core`] (`cpm-core`) — mechanism matrices, the seven structural properties,
//!   objective functions, the explicit Geometric / Explicit-Fair / Uniform mechanisms,
//!   LP formulations for constrained mechanism design, the selection flowchart,
//!   sampling, and analytic closed forms.
//! * [`simplex`] (`cpm-simplex`) — the dense two-phase primal simplex solver the LP
//!   formulations are solved with.
//! * [`data`] (`cpm-data`) — synthetic workloads: Binomial group populations and an
//!   Adult-like census table.
//! * [`eval`] (`cpm-eval`) — empirical metrics and the per-figure experiment drivers.
//! * [`serve`] (`cpm-serve`) — the serving subsystem: a snapshot-persistable design
//!   cache keyed by [`cpm_core::SpecKey`], batch privatization, and stdio/TCP/unix
//!   front ends.
//! * [`collect`] (`cpm-collect`) — the collection subsystem closing the LDP loop:
//!   a binary report wire format, lock-striped per-key accumulators, and the
//!   matrix-inversion estimator (`t̂ = M⁻¹·o` with plug-in variances and CIs)
//!   over the mechanism the serve side designed.  `serve → privatize → report →
//!   collect → estimate` is demonstrated end to end by `examples/collect_demo.rs`.
//! * [`obs`] (`cpm-obs`) — zero-dependency telemetry: a global metrics registry
//!   (counters / gauges / log2 latency histograms with a Prometheus-style text
//!   renderer), `CPM_TRACE`-gated tracing spans, and a flight-recorder ring
//!   buffer dumped to stderr on solver breakdown, cache poisoning, or frontend
//!   errors.  `CPM_METRICS_DUMP=<secs>` prints periodic scrapes; the serving
//!   wire protocol exposes the same scrape via the `metrics` op.
//!
//! ## Quickstart
//!
//! ```
//! use constrained_private_mechanisms::core::prelude::*;
//!
//! // A group of n = 7 people, privacy parameter alpha = 0.62 (epsilon ≈ 0.48).
//! let alpha = Alpha::new(0.62).unwrap();
//! let gm = GeometricMechanism::new(7, alpha).unwrap().into_matrix();
//! let em = ExplicitFairMechanism::new(7, alpha).unwrap().into_matrix();
//!
//! assert!(gm.satisfies_dp(alpha, 1e-9));
//! assert!(em.satisfies_dp(alpha, 1e-9));
//! // EM is fair; GM in general is not.
//! assert!(Property::Fairness.holds(&em, 1e-9));
//! assert!(!Property::Fairness.holds(&gm, 1e-9));
//!
//! // Constrained design goes through one typed entry point.
//! let designed = MechanismSpec::new(7, alpha)
//!     .properties(PropertySet::empty().with(Property::Fairness))
//!     .build()
//!     .unwrap()
//!     .design()
//!     .unwrap();
//! assert_eq!(designed.choice(), Some(MechanismChoice::ExplicitFair));
//! assert_eq!(designed.mechanism().entries(), em.entries());
//! ```

pub use cpm_collect as collect;
pub use cpm_core as core;
pub use cpm_data as data;
pub use cpm_eval as eval;
pub use cpm_obs as obs;
pub use cpm_serve as serve;
pub use cpm_simplex as simplex;

/// Convenience prelude re-exporting the most commonly used items across the workspace.
pub mod prelude {
    pub use cpm_collect::prelude::*;
    pub use cpm_core::prelude::*;
    pub use cpm_data::prelude::*;
    pub use cpm_eval::prelude::*;
    pub use cpm_simplex::{LinearProgram, Solution, SolveStatus};
}
